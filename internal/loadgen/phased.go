package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"iqolb/internal/adaptive"
	"iqolb/internal/faults"
	"iqolb/internal/report"
	"iqolb/internal/service"
	"iqolb/internal/stats"
	"iqolb/locks"
)

// This file is the phase-shifting workload: one run whose offered
// contention moves low → high → low, the regime change the adaptive
// controller exists for. A static policy is tuned for one regime and
// pays in the other; the controller must match the best static policy
// in *each* phase by migrating between them mid-run. BENCH_adaptive.json
// is the committed comparison.

// Schema versions for the phased artifact, separate from the flat
// Result/File schema so the two artifact families version independently.
const (
	// PhasedSchemaVersion identifies one phased run's layout.
	PhasedSchemaVersion = 1
	// PhasedFileSchemaVersion identifies the BENCH_adaptive.json container.
	PhasedFileSchemaVersion = 1
)

// Mode names the serving discipline of a phased run.
const (
	ModeHandoff   = "handoff"   // static PolicyHandoff
	ModeBroadcast = "broadcast" // static PolicyBroadcast
	ModeAdaptive  = "adaptive"  // controller-driven migration
)

// PhasedModes is the canonical comparison set.
var PhasedModes = []string{ModeHandoff, ModeBroadcast, ModeAdaptive}

// Phase is one contention regime within a phased run. All clients run
// every phase; phase boundaries are barriers (no client enters phase
// k+1 until every client finished phase k).
type Phase struct {
	Name string `json:"name"`
	// Resources is how many distinct resources the clients spread over:
	// 1 concentrates everyone on a single hot resource (high
	// contention); larger values dilute it.
	Resources int `json:"resources"`
	// Think is the idle think time in nanoseconds between critical
	// sections — the other contention dial. Unlike the flat runner's
	// spin-work think (which models compute and competes with the
	// server for cores), phased think sleeps: it models remote clients
	// whose think time costs this machine nothing.
	Think int64 `json:"think_ns"`
	// OpsPerClient is each client's closed-loop op count this phase.
	OpsPerClient int `json:"ops_per_client"`
}

// DefaultPhases is the canonical low → high → low shift.
//
// The low phases spread the clients across enough resources (with a
// long think) that queues stay empty: grants are immediate and the two
// grant policies are indistinguishable. The high phase concentrates the
// same clients on a few resources with a short think, building steady
// per-shard queues — the regime where the broadcast herd pays O(waiters)
// wake-ups per release and its p99 blows up, while direct hand-off
// stays O(1). The high phase deliberately stops short of a pure
// closed-loop hammer on one resource: with zero think the releasing
// client barges straight back in and broadcast degenerates into a
// winner chain whose count-weighted p99 looks excellent while the
// starvation tail that Little's law requires hides above the 99th
// percentile. The high phase's think is on the order of one network
// round trip, so the releaser cannot instantly re-claim.
func DefaultPhases() []Phase {
	return []Phase{
		{Name: "low", Resources: 64, Think: 5_000_000, OpsPerClient: 400},
		{Name: "high", Resources: 16, Think: 30_000, OpsPerClient: 1500},
		{Name: "cooldown", Resources: 64, Think: 5_000_000, OpsPerClient: 400},
	}
}

// PhasedConfig describes one phased run. The server is always
// in-process: the phased harness owns the service so it can read
// per-phase counter deltas and controller state.
type PhasedConfig struct {
	Mode    string  `json:"mode"`
	Clients int     `json:"clients"`
	Phases  []Phase `json:"phases"`
	// Server shape, as in Config.
	Shards     int           `json:"shards,omitempty"`
	Lock       locks.Kind    `json:"lock,omitempty"`
	QueueDepth int           `json:"queue_depth,omitempty"`
	Seed       uint64        `json:"seed,omitempty"`
	TTL        time.Duration `json:"ttl,omitempty"`
	MaxWait    time.Duration `json:"max_wait,omitempty"`
	// AdaptiveInterval tunes the controller sampling period in
	// ModeAdaptive (0 = service default).
	AdaptiveInterval time.Duration `json:"adaptive_interval,omitempty"`
}

// PhaseResult is one phase's client-observed measurements plus the
// server-side counter movement attributable to the phase.
type PhaseResult struct {
	Phase      Phase           `json:"phase"`
	Grants     uint64          `json:"grants"`
	Sheds      uint64          `json:"sheds"`
	Timeouts   uint64          `json:"timeouts"`
	Errors     uint64          `json:"errors"`
	WallNS     int64           `json:"wall_ns"`
	Throughput float64         `json:"throughput_grants_per_sec"`
	GrantP50   float64         `json:"grant_p50_ns"`
	GrantP99   float64         `json:"grant_p99_ns"`
	GrantP999  float64         `json:"grant_p999_ns"`
	GrantWait  stats.Histogram `json:"grant_wait_ns"`
	// Migrations/Degrades are the server counter deltas across this
	// phase — how much discipline change the phase provoked.
	Migrations uint64 `json:"migrations"`
	Degrades   uint64 `json:"degrades"`
	// ShardPolicies is each shard's live policy at phase end
	// ("degraded" when degraded).
	ShardPolicies []string `json:"shard_policies"`
}

// PhasedResult is one mode's full run across the phase schedule.
type PhasedResult struct {
	SchemaVersion int           `json:"schema_version"`
	Mode          string        `json:"mode"`
	Clients       int           `json:"clients"`
	Shards        int           `json:"shards"`
	QueueDepth    int           `json:"queue_depth"`
	Lock          string        `json:"lock,omitempty"`
	Seed          uint64        `json:"seed,omitempty"`
	Phases        []PhaseResult `json:"phases"`
	// Controller is the controller's final state (ModeAdaptive only).
	Controller *adaptive.State `json:"controller,omitempty"`
}

// PhasedFile is the on-disk artifact (BENCH_adaptive.json).
type PhasedFile struct {
	SchemaVersion int            `json:"schema_version"`
	GoVersion     string         `json:"go_version"`
	NumCPU        int            `json:"num_cpu"`
	Runs          []PhasedResult `json:"runs"`
}

// NewPhasedFile wraps phased runs in a schema-versioned container.
func NewPhasedFile(runs []PhasedResult) *PhasedFile {
	return &PhasedFile{
		SchemaVersion: PhasedFileSchemaVersion,
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Runs:          runs,
	}
}

// WriteJSON writes the container as indented JSON.
func (f *PhasedFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadPhasedFile reads and strictly version-checks a phased artifact.
func LoadPhasedFile(path string) (*PhasedFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f PhasedFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if f.SchemaVersion != PhasedFileSchemaVersion {
		return nil, fmt.Errorf("loadgen: %s: schema version %d, want %d", path, f.SchemaVersion, PhasedFileSchemaVersion)
	}
	for i := range f.Runs {
		if v := f.Runs[i].SchemaVersion; v != PhasedSchemaVersion {
			return nil, fmt.Errorf("loadgen: %s: run %d has schema version %d, want %d", path, i, v, PhasedSchemaVersion)
		}
	}
	return &f, nil
}

// serviceConfig maps a phased mode onto a service.Config.
func (c PhasedConfig) serviceConfig() (service.Config, error) {
	shards := c.Shards
	if shards == 0 {
		shards = 8
	}
	queue := c.QueueDepth
	if queue == 0 {
		queue = 64
	}
	sc := service.Config{
		Shards:     shards,
		Lock:       c.Lock,
		QueueDepth: queue,
		DefaultTTL: 30 * time.Second,
		MaxTTL:     time.Minute,
	}
	switch c.Mode {
	case ModeHandoff:
		sc.Policy = service.PolicyHandoff
	case ModeBroadcast:
		sc.Policy = service.PolicyBroadcast
	case ModeAdaptive:
		// The controller owns the discipline; broadcast is the natural
		// uncontended start it would pick anyway.
		sc.Policy = service.PolicyBroadcast
		sc.Adaptive = true
		sc.AdaptiveInterval = c.AdaptiveInterval
	default:
		return sc, fmt.Errorf("loadgen: unknown mode %q (have handoff, broadcast, adaptive)", c.Mode)
	}
	return sc, nil
}

// RunPhases executes one phased run: every client walks the phase
// schedule in lockstep (barrier per boundary) against a fresh
// in-process server, and each phase's stats are captured separately.
func RunPhases(cfg PhasedConfig) (PhasedResult, error) {
	if cfg.Clients < 1 {
		return PhasedResult{}, fmt.Errorf("loadgen: clients = %d", cfg.Clients)
	}
	if len(cfg.Phases) == 0 {
		cfg.Phases = DefaultPhases()
	}
	for i, ph := range cfg.Phases {
		if ph.Resources < 1 || ph.OpsPerClient < 1 {
			return PhasedResult{}, fmt.Errorf("loadgen: phase %d (%q): resources and ops_per_client must be >= 1", i, ph.Name)
		}
	}
	maxWait := cfg.MaxWait
	if maxWait == 0 {
		maxWait = 10 * time.Second
	}
	sc, err := cfg.serviceConfig()
	if err != nil {
		return PhasedResult{}, err
	}
	svc, err := service.New(sc)
	if err != nil {
		return PhasedResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return PhasedResult{}, err
	}
	srv := service.NewServer(svc)
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		svc.Close()
	}()

	clients := make([]*service.Client, cfg.Clients)
	for i := range clients {
		c, err := service.Dial(ln.Addr().String())
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return PhasedResult{}, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	out := PhasedResult{
		SchemaVersion: PhasedSchemaVersion,
		Mode:          cfg.Mode,
		Clients:       cfg.Clients,
		Shards:        sc.Shards,
		QueueDepth:    sc.QueueDepth,
		Lock:          string(sc.Lock),
		Seed:          cfg.Seed,
	}

	// Discarded warmup against the first phase's distribution: the
	// connection burst of N fresh clients spikes every queue at once,
	// and measuring through it charges that transient (and the
	// controller's reaction to it) to the first phase. Stats and
	// counter deltas start after it.
	{
		warm := cfg.Phases[0]
		warm.OpsPerClient = 30
		var wg sync.WaitGroup
		wg.Add(len(clients))
		scratch := make([]clientShard, len(clients))
		for g := range clients {
			go runPhaseClient(&wg, clients[g], &scratch[g], cfg, len(cfg.Phases), warm, g, maxWait)
		}
		wg.Wait()
		for g := range scratch {
			if err := scratch[g].lastErr; err != nil {
				return PhasedResult{}, fmt.Errorf("loadgen: warmup client error: %w", err)
			}
		}
	}

	prev := svc.Snapshot()
	for pi, ph := range cfg.Phases {
		shards := make([]clientShard, cfg.Clients)
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < cfg.Clients; g++ {
			wg.Add(1)
			go runPhaseClient(&wg, clients[g], &shards[g], cfg, pi, ph, g, maxWait)
		}
		wg.Wait() // the barrier: nobody enters phase pi+1 early
		wall := time.Since(t0)

		pr := PhaseResult{Phase: ph, WallNS: wall.Nanoseconds()}
		var firstErr error
		for g := range shards {
			sh := &shards[g]
			pr.GrantWait.Merge(&sh.grantWait)
			pr.Grants += sh.grants
			pr.Sheds += sh.sheds
			pr.Timeouts += sh.timeouts
			pr.Errors += sh.errs
			if firstErr == nil && sh.lastErr != nil {
				firstErr = sh.lastErr
			}
		}
		if firstErr != nil {
			return PhasedResult{}, fmt.Errorf("loadgen: phase %q client error (%d total): %w", ph.Name, pr.Errors, firstErr)
		}
		pr.Throughput = float64(pr.Grants) / wall.Seconds()
		pr.GrantP50 = pr.GrantWait.Percentile(50)
		pr.GrantP99 = pr.GrantWait.Percentile(99)
		pr.GrantP999 = pr.GrantWait.Percentile(99.9)
		snap := svc.Snapshot()
		pr.Migrations = snap.Totals.Migrations - prev.Totals.Migrations
		pr.Degrades = snap.Totals.Degrades - prev.Totals.Degrades
		for _, ss := range snap.Shards {
			p := ss.Policy
			if ss.Degraded {
				p = "degraded"
			}
			pr.ShardPolicies = append(pr.ShardPolicies, p)
		}
		prev = snap
		out.Phases = append(out.Phases, pr)
	}
	out.Controller = svc.ControllerState()
	return out, nil
}

// runPhaseClient is one client's closed loop for one phase.
func runPhaseClient(wg *sync.WaitGroup, cl *service.Client, sh *clientShard, cfg PhasedConfig, pi int, ph Phase, g int, maxWait time.Duration) {
	defer wg.Done()
	owner := fmt.Sprintf("client-%d", g)
	// Same PRNG family and per-actor splitting as the flat runner, with
	// the phase index folded in so phases draw independent sequences.
	str := faults.NewStream(cfg.Seed + (uint64(pi)*256+uint64(g))*0x9e3779b97f4a7c15 + 1)
	for op := 0; op < ph.OpsPerClient; op++ {
		if ph.Think > 0 {
			// Uniform jitter in [Think/2, 3·Think/2): without it the
			// runtime coalesces the sleeps and all clients wake in
			// lockstep bursts, turning an idle phase into a periodic
			// thundering herd.
			time.Sleep(time.Duration(ph.Think/2 + str.Intn(ph.Think)))
		}
		res := fmt.Sprintf("res-%d", str.Intn(int64(ph.Resources)))
		t0 := time.Now()
		lease, err := cl.Acquire(res, owner, service.AcquireOptions{
			TTL:     cfg.TTL,
			Wait:    true,
			MaxWait: maxWait,
		})
		if err != nil {
			switch {
			case isShed(err):
				sh.sheds++
			case isTimeout(err):
				sh.timeouts++
			default:
				sh.errs++
				sh.lastErr = err
			}
			continue
		}
		sh.grantWait.Add(uint64(time.Since(t0)))
		sh.grants++
		if err := cl.Release(res, lease.Token); err != nil {
			sh.errs++
			sh.lastErr = fmt.Errorf("release: %w", err)
		}
	}
}

// RenderPhased formats phased runs as the CLI's human-readable table:
// one row per mode × phase, so the per-phase comparison the controller
// is judged on reads straight down the columns.
func RenderPhased(runs []PhasedResult) string {
	t := report.NewTable("Phase-shifting load (client-observed grant latency, ns)",
		"mode", "phase", "resources", "grants", "grants/s", "p50", "p99", "sheds", "migrations")
	for _, r := range runs {
		for _, pr := range r.Phases {
			t.Row(r.Mode, pr.Phase.Name, pr.Phase.Resources, pr.Grants,
				fmt.Sprintf("%.0f", pr.Throughput),
				fmt.Sprintf("%.0f", pr.GrantP50), fmt.Sprintf("%.0f", pr.GrantP99),
				pr.Sheds, pr.Migrations)
		}
	}
	t.Note("adaptive must match or beat the best static policy's p99 in every phase (BENCH_adaptive.json golden test)")
	return t.String()
}
