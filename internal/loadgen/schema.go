package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"iqolb/internal/report"
	"iqolb/internal/service"
	"iqolb/internal/stats"
)

// Schema versions, following the harness artifact conventions: bump on
// any field addition, removal, or change of meaning.
const (
	// ResultSchemaVersion identifies one load run's layout.
	ResultSchemaVersion = 1
	// FileSchemaVersion identifies the BENCH_service.json container.
	FileSchemaVersion = 1
)

// ServerTotals folds the in-process server's counter snapshot into a
// result (absent when the run targeted an external -addr).
type ServerTotals struct {
	Policy   string           `json:"policy"`
	Counters service.Counters `json:"counters"`
	// DegradedShards counts shards the starvation watchdog downgraded.
	DegradedShards int `json:"degraded_shards"`
	// ServerGrantP99NS is the server-side enqueue→grant p99, for
	// separating queueing delay from network time.
	ServerGrantP99NS float64 `json:"server_grant_p99_ns"`
}

// Result is one load run's measurements. Grant latency is
// client-observed: acquire issue → lease granted, over real TCP.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	Bench         string `json:"bench"`
	Lock          string `json:"lock,omitempty"`
	Policy        string `json:"policy,omitempty"`
	Clients       int    `json:"clients"`
	Shards        int    `json:"shards,omitempty"`
	QueueDepth    int    `json:"queue_depth,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	Grants        uint64 `json:"grants"`
	Sheds         uint64 `json:"sheds"`
	Timeouts      uint64 `json:"timeouts"`
	Errors        uint64 `json:"errors"`
	WallNS        int64  `json:"wall_ns"`
	// Throughput is granted leases per second of wall time.
	Throughput float64 `json:"throughput_grants_per_sec"`
	// Fairness is Jain's index over per-client grant counts.
	Fairness     float64  `json:"fairness_jain"`
	PerClientOps []uint64 `json:"per_client_ops"`
	// GrantWait: client-side acquire → granted, ns.
	GrantWait stats.Histogram `json:"grant_wait_ns"`
	GrantP50  float64         `json:"grant_p50_ns"`
	GrantP99  float64         `json:"grant_p99_ns"`
	GrantP999 float64         `json:"grant_p999_ns"`
	Server    *ServerTotals   `json:"server,omitempty"`
}

// File is the on-disk artifact (BENCH_service.json).
type File struct {
	SchemaVersion int      `json:"schema_version"`
	GoVersion     string   `json:"go_version"`
	NumCPU        int      `json:"num_cpu"`
	Results       []Result `json:"results"`
}

// NewFile wraps results in a schema-versioned container.
func NewFile(results []Result) *File {
	return &File{
		SchemaVersion: FileSchemaVersion,
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Results:       results,
	}
}

// WriteJSON writes the container as indented JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadFile reads and version-checks a results file.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if f.SchemaVersion != FileSchemaVersion {
		return nil, fmt.Errorf("loadgen: %s: schema version %d, want %d", path, f.SchemaVersion, FileSchemaVersion)
	}
	for i := range f.Results {
		if v := f.Results[i].SchemaVersion; v != ResultSchemaVersion {
			return nil, fmt.Errorf("loadgen: %s: result %d has schema version %d, want %d", path, i, v, ResultSchemaVersion)
		}
	}
	return &f, nil
}

// Render formats results as the CLI's human-readable table.
func Render(results []Result) string {
	t := report.NewTable("Lock-lease service load (client-observed grant latency, ns)",
		"bench", "clients", "policy", "lock", "grants", "grants/s", "p50", "p99", "p99.9", "sheds", "fairness")
	for _, r := range results {
		t.Row(r.Bench, r.Clients, r.Policy, r.Lock, r.Grants,
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.0f", r.GrantP50), fmt.Sprintf("%.0f", r.GrantP99),
			fmt.Sprintf("%.0f", r.GrantP999),
			r.Sheds,
			fmt.Sprintf("%.3f", r.Fairness))
	}
	t.Note("handoff hands the lease releaser→waiter in one transfer; broadcast wakes every waiter to re-contend")
	return t.String()
}
