package faults

import (
	"encoding/json"
	"testing"
)

// TestKindNamesRoundTrip: every kind parses back from its name and from
// its JSON encoding — the names are the stable identity used in plans,
// cache keys and manifests.
func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Errorf("JSON round trip of %v gave %v, %v", k, back, err)
		}
	}
	if _, err := ParseKind("no-such-fault"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}

func TestParseKinds(t *testing.T) {
	ks, err := ParseKinds("stuck-delay, bus-latency")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0] != StuckDelay || ks[1] != BusLatency {
		t.Fatalf("ParseKinds = %v", ks)
	}
	all, err := ParseKinds("all")
	if err != nil || len(all) != len(Kinds()) {
		t.Fatalf("ParseKinds(all) = %v, %v", all, err)
	}
	if ks, err := ParseKinds(""); err != nil || ks != nil {
		t.Fatalf("ParseKinds(\"\") = %v, %v; want nil, nil", ks, err)
	}
	if _, err := ParseKinds("stuck-delay,bogus"); err == nil {
		t.Error("ParseKinds accepted an unknown name")
	}
}

// TestInjectorDeterminism: the same plan produces the same fire/skip
// sequence, and a different seed produces a different one.
func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{Seed: 7, Kinds: []Kind{BusLatency}, Rate: 0.5}
	roll := func(p *Plan) []bool {
		in, err := NewInjector(p)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 256)
		for i := range out {
			out[i] = in.Fire(BusLatency, uint64(i))
		}
		return out
	}
	a, b := roll(plan), roll(plan)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at opportunity %d", i)
		}
	}
	other := roll(&Plan{Seed: 8, Kinds: []Kind{BusLatency}, Rate: 0.5})
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 256-roll sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("rate 0.5 fired %d/%d times; PRNG looks broken", fired, len(a))
	}
}

// TestInjectorDefaults: rate 0 means always, disabled kinds never fire
// and consume no PRNG state, MaxInjections caps the log.
func TestInjectorDefaults(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 1, Kinds: []Kind{StuckDelay}})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Fire(StuckDelay, 10) {
		t.Error("rate 0 (default 1) did not fire")
	}
	if in.Fire(FlushDropped, 11) {
		t.Error("unarmed kind fired")
	}
	if in.Enabled(FlushDropped) || !in.Enabled(StuckDelay) {
		t.Error("Enabled does not reflect the plan")
	}
	if got := in.Injections(); len(got) != 1 || got[0] != (Injection{Kind: StuckDelay, At: 10}) {
		t.Errorf("injection log = %v", got)
	}

	capped, err := NewInjector(&Plan{Seed: 1, Kinds: []Kind{StuckDelay}, MaxInjections: 2})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if capped.Fire(StuckDelay, uint64(i)) {
			fired++
		}
	}
	if fired != 2 || capped.Total() != 2 {
		t.Errorf("MaxInjections=2 fired %d times (total %d)", fired, capped.Total())
	}
}

// TestNilInjector: a nil injector (no plan) is inert everywhere.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if got, err := NewInjector(nil); got != nil || err != nil {
		t.Fatalf("NewInjector(nil) = %v, %v", got, err)
	}
	if in.Enabled(StuckDelay) || in.Fire(StuckDelay, 0) {
		t.Error("nil injector fired")
	}
	if in.Injections() != nil || in.Counts() != nil || in.Total() != 0 {
		t.Error("nil injector reported injections")
	}
	if in.WantsClass("DataShared") {
		t.Error("nil injector wants a class")
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (&Plan{Rate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (&Plan{Kinds: []Kind{Kind(200)}}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := (&Plan{Seed: 3, Kinds: Kinds(), Rate: 0.25}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestPlanJSONStable: the plan's JSON encoding is what enters the cache
// key; pin its shape.
func TestPlanJSONStable(t *testing.T) {
	p := Plan{Seed: 9, Kinds: []Kind{StuckDelay, BusLatency}, Rate: 0.5, Degrade: true}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seed":9,"kinds":["stuck-delay","bus-latency"],"rate":0.5,"degrade":true}`
	if string(data) != want {
		t.Errorf("plan JSON = %s\nwant %s", data, want)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != 9 || len(back.Kinds) != 2 || back.Kinds[1] != BusLatency || !back.Degrade {
		t.Errorf("plan round trip = %+v", back)
	}
}

func TestCountsString(t *testing.T) {
	in, err := NewInjector(&Plan{Seed: 1, Kinds: []Kind{StuckDelay, FlushDropped}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CountsString(); got != "none" {
		t.Errorf("empty CountsString = %q", got)
	}
	in.Fire(StuckDelay, 1)
	in.Fire(StuckDelay, 2)
	in.Fire(FlushDropped, 3)
	if got := in.CountsString(); got != "flush-dropped=1 stuck-delay=2" {
		t.Errorf("CountsString = %q", got)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 64; i++ {
		if a.Next() != b.Next() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewStream(43)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
	// Zero seed is valid (seedMix keeps the state nonzero).
	z := NewStream(0)
	if z.Next() == 0 && z.Next() == 0 {
		t.Fatal("zero seed produced a dead stream")
	}
}

func TestStreamIntnChance(t *testing.T) {
	s := NewStream(7)
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit %d/10 values", len(seen))
	}
	if !s.Chance(1) || s.Chance(0) {
		t.Fatal("Chance boundaries wrong")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if s.Chance(0.3) {
			hits++
		}
	}
	if hits < 2500 || hits > 3500 {
		t.Fatalf("Chance(0.3) hit %d/10000", hits)
	}
}

// TestInjectorMatchesStream pins that the injector consumes exactly the
// exported Stream: rate rolls draw from NewStream(plan.Seed) in firing
// order, so external chaos harnesses can predict (and share) schedules.
func TestInjectorMatchesStream(t *testing.T) {
	plan := &Plan{Seed: 11, Kinds: []Kind{StuckDelay}, Rate: 0.5}
	in, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStream(11)
	for cycle := uint64(0); cycle < 256; cycle++ {
		want := ref.Chance(0.5)
		if got := in.Fire(StuckDelay, cycle); got != want {
			t.Fatalf("cycle %d: Fire = %v, reference stream says %v", cycle, got, want)
		}
	}
}
