// Package faults is the deterministic fault-injection subsystem: a
// seeded, per-machine plan of typed protocol faults that the coherence
// fabric consults at its existing decision points. It replaces the old
// package-global mutation switches in internal/coherence with
// per-machine state, so faulted and clean machines can run in parallel.
//
// A Plan is pure data (JSON-stable, so it can enter the experiment
// cache key); an Injector is the runtime state derived from it — a
// seeded PRNG consumed in simulator event order plus the injection log.
// The simulated machine is single-threaded inside its event engine, so
// the same plan over the same workload fires the same faults at the
// same cycles, run after run, regardless of harness parallelism.
package faults

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Kind is one typed protocol fault.
type Kind uint8

const (
	// FlushDropped loses one release-time flush of a delayed response:
	// the forwarding event vanishes, but the armed delay time-out
	// survives and must eventually force the line out.
	FlushDropped Kind = iota
	// StuckDelay wedges a started delayed response permanently: the
	// flush and the time-out timer are both suppressed for that line, so
	// a queued LPRFO waiter behind the delaying holder is never granted.
	// Recovery requires the starvation watchdog (graceful degradation)
	// or ends in a typed starvation/deadlock diagnosis.
	StuckDelay
	// TearOffOwnership sends a tear-off copy as an ownership transfer
	// (DataExclusive) while the supplier keeps its Modified line — two
	// writable copies of one line. The SWMR monitor must flag it.
	TearOffOwnership
	// GrantReorder forwards a flushed delay to the second queued
	// ownership-wanting duty instead of the first, violating the paper's
	// bus-order hand-off. The hand-off-order monitor must flag it.
	GrantReorder
	// PredictorCorrupt flips the lock predictor's verdict for the PC of
	// a completing SC: a confident lock entry is cleared, an unconfident
	// one jumps to full confidence. Performance-only: the run must still
	// complete with correct final state.
	PredictorCorrupt
	// BusLatency stretches the delivery latency of matching data-network
	// messages by ExtraLatency cycles. Performance-only.
	BusLatency

	numKinds
)

var kindNames = [...]string{
	"flush-dropped", "stuck-delay", "tearoff-ownership",
	"grant-reorder", "predictor-corrupt", "bus-latency",
}

// String returns the kind's stable CLI/JSON name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind by name, so plans hash stably even if the
// enum is ever reordered.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("faults: cannot marshal unknown kind %d", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind resolves a kind name.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q (have %s)", s, strings.Join(kindNames[:], ", "))
}

// Kinds returns every fault kind, in enum order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Plan is a deterministic fault campaign for one machine: which fault
// kinds are armed, the PRNG seed, and the knobs shared by all of them.
// A Plan is pure data — it JSON-marshals stably and belongs in the
// experiment cache key; the zero value of every optional field selects
// the documented default.
type Plan struct {
	// Seed drives the injection PRNG. Two runs of the same workload with
	// the same seed inject identically.
	Seed uint64 `json:"seed"`
	// Kinds lists the armed fault kinds. Empty arms nothing (useful as a
	// fault-instrumented but clean reference run).
	Kinds []Kind `json:"kinds"`
	// Rate is the per-opportunity injection probability in (0, 1];
	// 0 means 1 (inject at every opportunity).
	Rate float64 `json:"rate,omitempty"`
	// MaxInjections caps the total injections across all kinds
	// (0 = unlimited).
	MaxInjections uint64 `json:"max_injections,omitempty"`
	// ExtraLatency is the BusLatency stretch in cycles (0 = 400).
	ExtraLatency uint64 `json:"extra_latency,omitempty"`
	// Classes restricts BusLatency to the named data-message classes
	// (mem.DataKind names); empty matches every class.
	Classes []string `json:"classes,omitempty"`
	// Degrade arms graceful degradation: when the check monitors detect
	// an injected starvation, the machine falls back to plain-RFO
	// semantics and the run completes instead of failing.
	Degrade bool `json:"degrade,omitempty"`
	// StarvationBound overrides the monitor watchdog's bound, in cycles
	// (0 keeps the monitor's derived default). Campaigns tighten it so
	// degradation engages quickly.
	StarvationBound uint64 `json:"starvation_bound,omitempty"`
}

// Validate rejects malformed plans.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("faults: rate %v outside [0, 1]", p.Rate)
	}
	for _, k := range p.Kinds {
		if int(k) >= int(numKinds) {
			return fmt.Errorf("faults: unknown kind %d in plan", uint8(k))
		}
	}
	return nil
}

// rate returns the effective per-opportunity probability.
func (p *Plan) rate() float64 {
	if p.Rate == 0 {
		return 1
	}
	return p.Rate
}

// ParseKinds resolves a comma-separated kind list; "all" (or "*") selects
// every kind.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" || s == "*" {
		return Kinds(), nil
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		k, err := ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Injection is one log entry: an injected fault and the cycle it fired.
type Injection struct {
	Kind Kind   `json:"kind"`
	At   uint64 `json:"cycle"`
}

// Injector is a Plan's runtime state: the seeded PRNG, the armed-kind
// set, and the injection log. One Injector serves one machine and is
// consumed in the machine's deterministic event order; it is not safe
// for concurrent use (the event engine is single-threaded).
type Injector struct {
	plan    Plan
	rng     Stream
	enabled [numKinds]bool
	log     []Injection
}

// NewInjector derives the runtime state from a plan; a nil plan returns
// a nil injector (every method is nil-safe and inert).
func NewInjector(p *Plan) (*Injector, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{plan: *p, rng: NewStream(p.Seed)}
	for _, k := range p.Kinds {
		in.enabled[k] = true
	}
	return in, nil
}

// seedMix spreads the user seed over the full state space (splitmix64
// finalizer) and keeps the xorshift state nonzero.
func seedMix(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}

// Stream is the injection PRNG — seedMix (splitmix64 finalizer) into
// xorshift64* — exported so other deterministic chaos harnesses (the
// service fault campaigns) draw from the exact generator the simulator
// campaigns use. The zero value is invalid; use NewStream.
type Stream struct {
	state uint64
}

// NewStream seeds a stream; equal seeds yield equal draw sequences.
func NewStream(seed uint64) Stream {
	return Stream{state: seedMix(seed)}
}

// Next advances the xorshift64* PRNG.
func (s *Stream) Next() uint64 {
	x := s.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a draw in [0, n); n must be positive.
func (s *Stream) Intn(n int64) int64 {
	return int64(s.Next() % uint64(n))
}

// Chance rolls an event with probability p (clamped to [0, 1]).
func (s *Stream) Chance(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	// Top 53 bits → uniform float in [0, 1).
	return float64(s.Next()>>11)/(1<<53) < p
}

// Enabled reports whether the plan arms kind (without consuming PRNG
// state or counting an opportunity).
func (in *Injector) Enabled(k Kind) bool {
	return in != nil && in.enabled[k]
}

// Fire rolls one injection opportunity for kind at the given cycle:
// it returns true — and logs the injection — when the fault strikes.
// The PRNG is consumed only for armed kinds, so arming an unrelated
// kind never perturbs another kind's injection schedule... within one
// plan; opportunities of all armed kinds share one stream in event
// order, which is exactly what makes a run reproducible.
func (in *Injector) Fire(k Kind, cycle uint64) bool {
	if !in.Enabled(k) {
		return false
	}
	if in.plan.MaxInjections > 0 && uint64(len(in.log)) >= in.plan.MaxInjections {
		return false
	}
	if r := in.plan.rate(); r < 1 {
		if !in.rng.Chance(r) {
			return false
		}
	}
	in.log = append(in.log, Injection{Kind: k, At: cycle})
	return true
}

// Injections returns the injection log in firing order.
func (in *Injector) Injections() []Injection {
	if in == nil {
		return nil
	}
	return in.log
}

// Total reports how many faults have been injected.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	return uint64(len(in.log))
}

// Counts aggregates the injection log by kind name (nil when nothing
// fired), for result records and failure manifests.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil || len(in.log) == 0 {
		return nil
	}
	out := make(map[string]uint64)
	for _, e := range in.log {
		out[e.Kind.String()]++
	}
	return out
}

// CountsString renders Counts as a stable "kind=n kind=n" line.
func (in *Injector) CountsString() string {
	counts := in.Counts()
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}

// ExtraLatency returns the BusLatency stretch (default 400 cycles).
func (in *Injector) ExtraLatency() uint64 {
	if in == nil || in.plan.ExtraLatency == 0 {
		return 400
	}
	return in.plan.ExtraLatency
}

// WantsClass reports whether BusLatency targets the named data-message
// class (an empty Classes list targets every class).
func (in *Injector) WantsClass(class string) bool {
	if in == nil {
		return false
	}
	if len(in.plan.Classes) == 0 {
		return true
	}
	for _, c := range in.plan.Classes {
		if c == class {
			return true
		}
	}
	return false
}

// Plan returns a copy of the plan the injector was built from.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}
