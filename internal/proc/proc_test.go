package proc

import (
	"testing"

	"iqolb/internal/engine"
	"iqolb/internal/isa"
	"iqolb/internal/mem"
)

// fakePort is a flat functional memory with a fixed latency and trivially
// always-successful SC, sufficient for exercising the core in isolation.
type fakePort struct {
	eng     *engine.Engine
	latency engine.Time
	mem     map[mem.Addr]uint64
	ops     []mem.AccessKind
}

func newFakePort(eng *engine.Engine, lat engine.Time) *fakePort {
	return &fakePort{eng: eng, latency: lat, mem: make(map[mem.Addr]uint64)}
}

func (f *fakePort) Access(req mem.Request) {
	f.ops = append(f.ops, req.Kind)
	f.eng.After(f.latency, func(engine.Time) {
		var res mem.Result
		switch req.Kind {
		case mem.Load, mem.LoadLinked:
			res.Value = f.mem[req.Addr]
		case mem.Store:
			f.mem[req.Addr] = req.Value
		case mem.StoreCond:
			f.mem[req.Addr] = req.Value
			res.OK = true
		case mem.SwapOp:
			res.Value = f.mem[req.Addr]
			f.mem[req.Addr] = req.Value
		}
		req.Done(res)
	})
}

type fakePlat struct {
	halts    int
	barriers map[int64][]func()
	procs    int
}

func (f *fakePlat) Barrier(ep int64, cpu int, release func()) {
	if f.barriers == nil {
		f.barriers = make(map[int64][]func())
	}
	f.barriers[ep] = append(f.barriers[ep], release)
	if len(f.barriers[ep]) == f.procs {
		for _, r := range f.barriers[ep] {
			r()
		}
		delete(f.barriers, ep)
	}
}

func (f *fakePlat) Halted(int) { f.halts++ }

func run1(t *testing.T, src string, width int) (*CPU, *fakePort, *engine.Engine) {
	t.Helper()
	eng := engine.New()
	port := newFakePort(eng, 1)
	plat := &fakePlat{procs: 1}
	cpu := New(0, 1, Config{IssueWidth: width}, isa.MustAssemble(src), eng, port, plat)
	cpu.Start()
	if _, hit := eng.Run(1_000_000); hit {
		t.Fatal("run hit cycle limit")
	}
	if !cpu.Halted() {
		t.Fatal("cpu did not halt")
	}
	return cpu, port, eng
}

func TestALUAndBranches(t *testing.T) {
	cpu, _, _ := run1(t, `
	  li   t0, 10
	  li   t1, 3
	  add  t2, t0, t1     # 13
	  sub  t3, t0, t1     # 7
	  mul  t4, t0, t1     # 30
	  div  t5, t0, t1     # 3
	  rem  t6, t0, t1     # 1
	  slt  t7, t1, t0     # 1
	  li   s0, 0
	loop:
	  addi s0, s0, 1
	  blt  s0, t1, loop   # runs 3 times
	  halt
	`, 1)
	want := map[isa.Reg]uint64{
		isa.T2: 13, isa.T3: 7, isa.T4: 30, isa.T5: 3, isa.T6: 1, isa.T7: 1, isa.S0: 3,
	}
	for r, v := range want {
		if got := cpu.Reg(r); got != v {
			t.Errorf("reg %s = %d, want %d", isa.RegName(r), got, v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	cpu, _, _ := run1(t, "addi r0, r0, 99\n add r1, r0, r0\n halt", 1)
	if cpu.Reg(isa.R0) != 0 || cpu.Reg(1) != 0 {
		t.Fatal("r0 not hardwired to zero")
	}
}

func TestMemoryOps(t *testing.T) {
	cpu, port, _ := run1(t, `
	  li   a0, 64
	  li   t0, 7
	  sw   t0, 0(a0)
	  lw   t1, 0(a0)     # 7
	  ll   t2, 0(a0)     # 7
	  addi t2, t2, 1
	  sc   t2, 0(a0)     # success -> t2=1
	  lw   t3, 0(a0)     # 8
	  li   t4, 99
	  swap t4, 0(a0)     # t4=8, mem=99
	  lw   t5, 0(a0)     # 99
	  halt
	`, 4)
	if cpu.Reg(isa.T1) != 7 || cpu.Reg(isa.T2) != 1 || cpu.Reg(isa.T3) != 8 ||
		cpu.Reg(isa.T4) != 8 || cpu.Reg(isa.T5) != 99 {
		t.Fatalf("regs: t1=%d t2=%d t3=%d t4=%d t5=%d", cpu.Reg(isa.T1), cpu.Reg(isa.T2),
			cpu.Reg(isa.T3), cpu.Reg(isa.T4), cpu.Reg(isa.T5))
	}
	if cpu.MemOps != 7 || len(port.ops) != 7 {
		t.Fatalf("memops = %d/%d, want 7", cpu.MemOps, len(port.ops))
	}
}

func TestJalJr(t *testing.T) {
	cpu, _, _ := run1(t, `
	  li  s0, 0
	  jal fn
	  jal fn
	  halt
	fn:
	  addi s0, s0, 1
	  jr  lr
	`, 1)
	if cpu.Reg(isa.S0) != 2 {
		t.Fatalf("s0 = %d, want 2 (two calls)", cpu.Reg(isa.S0))
	}
}

func TestWorkConsumesCycles(t *testing.T) {
	_, _, eng := run1(t, "work 500\n halt", 4)
	if eng.Now() < 500 {
		t.Fatalf("run finished at %d, want >= 500", eng.Now())
	}
	cpuFast, _, engFast := run1(t, "halt", 4)
	if engFast.Now() >= 500 {
		t.Fatal("control run too slow")
	}
	_ = cpuFast
}

func TestWorkrUsesRegister(t *testing.T) {
	cpu, _, eng := run1(t, "li t0, 300\n workr t0\n halt", 1)
	if eng.Now() < 300 {
		t.Fatalf("workr finished at %d, want >= 300", eng.Now())
	}
	if cpu.WorkCycles != 300 {
		t.Fatalf("WorkCycles = %d, want 300", cpu.WorkCycles)
	}
}

func TestIssueWidthSpeedsUpALU(t *testing.T) {
	src := `
	  li t0, 0
	  li t1, 1000
	loop:
	  addi t0, t0, 1
	  nop
	  nop
	  blt t0, t1, loop
	  halt
	`
	_, _, e1 := run1(t, src, 1)
	_, _, e4 := run1(t, src, 4)
	if e4.Now()*2 >= e1.Now() {
		t.Fatalf("width 4 (%d cycles) not at least 2x faster than width 1 (%d)", e4.Now(), e1.Now())
	}
}

func TestRandDeterministicAndBounded(t *testing.T) {
	src := "rand t0, 16\n rand t1, 16\n rand t2, 16\n halt"
	a, _, _ := run1(t, src, 1)
	b, _, _ := run1(t, src, 1)
	for _, r := range []isa.Reg{isa.T0, isa.T1, isa.T2} {
		if a.Reg(r) != b.Reg(r) {
			t.Fatal("rand not deterministic across identical runs")
		}
		if a.Reg(r) >= 16 {
			t.Fatalf("rand out of bounds: %d", a.Reg(r))
		}
	}
	// Different CPU ids draw different streams.
	eng := engine.New()
	port := newFakePort(eng, 1)
	plat := &fakePlat{procs: 1}
	c1 := New(1, 2, Config{IssueWidth: 1}, isa.MustAssemble(src), eng, port, plat)
	c1.Start()
	eng.Run(0)
	same := 0
	for _, r := range []isa.Reg{isa.T0, isa.T1, isa.T2} {
		if a.Reg(r) == c1.Reg(r) {
			same++
		}
	}
	if same == 3 {
		t.Fatal("two CPU ids produced identical rand streams")
	}
}

func TestCpuidProcs(t *testing.T) {
	eng := engine.New()
	port := newFakePort(eng, 1)
	plat := &fakePlat{procs: 1}
	cpu := New(5, 8, Config{IssueWidth: 1}, isa.MustAssemble("cpuid t0\n procs t1\n halt"), eng, port, plat)
	cpu.Start()
	eng.Run(0)
	if cpu.Reg(isa.T0) != 5 || cpu.Reg(isa.T1) != 8 {
		t.Fatalf("cpuid/procs = %d/%d, want 5/8", cpu.Reg(isa.T0), cpu.Reg(isa.T1))
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng := engine.New()
	port := newFakePort(eng, 1)
	plat := &fakePlat{procs: 2}
	// P0 works long before the barrier; P1 reaches it immediately. Both
	// must leave together.
	fast := isa.MustAssemble("bar 1\n halt")
	slow := isa.MustAssemble("work 1000\n bar 1\n halt")
	c0 := New(0, 2, Config{IssueWidth: 1}, slow, eng, port, plat)
	c1 := New(1, 2, Config{IssueWidth: 1}, fast, eng, port, plat)
	c0.Start()
	c1.Start()
	eng.Run(0)
	if plat.halts != 2 {
		t.Fatalf("halts = %d, want 2", plat.halts)
	}
	if c1.HaltedAt < 1000 {
		t.Fatalf("fast cpu halted at %d, before the slow one reached the barrier", c1.HaltedAt)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	eng := engine.New()
	cpu := New(0, 1, Config{IssueWidth: 1},
		isa.MustAssemble("li a0, 3\n lw t0, 0(a0)\n halt"),
		eng, newFakePort(eng, 1), &fakePlat{procs: 1})
	cpu.Start()
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	eng.Run(0)
}

func TestInstructionCounting(t *testing.T) {
	cpu, _, _ := run1(t, "li t0, 1\n li t1, 2\n add t2, t0, t1\n halt", 4)
	if cpu.Instructions != 4 {
		t.Fatalf("Instructions = %d, want 4", cpu.Instructions)
	}
}
