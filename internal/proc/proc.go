// Package proc implements the simulated processor core: an in-order
// interpreter of the isa package's instruction set with a configurable
// issue width for non-memory instructions and blocking memory operations.
//
// The paper simulates a 4-wide out-of-order core; as documented in
// DESIGN.md we substitute an in-order core whose issue width approximates
// the same non-memory throughput. The synchronization mechanisms under
// study live entirely in the memory system, which the core drives through
// the Port interface.
package proc

import (
	"fmt"

	"iqolb/internal/engine"
	"iqolb/internal/isa"
	"iqolb/internal/mem"
)

// Port is the processor's view of its cache controller. Access must invoke
// req.Done exactly once, at the operation's completion cycle.
type Port interface {
	Access(req mem.Request)
}

// Platform provides the services that live outside the node: the hardware
// barrier and run-completion notification.
type Platform interface {
	// Barrier parks the CPU at the barrier episode; release resumes it.
	Barrier(episode int64, cpu int, release func())
	// Halted reports that the CPU executed HALT.
	Halted(cpu int)
}

// Config parameterizes a CPU.
type Config struct {
	// IssueWidth is the number of consecutive non-memory instructions
	// retired per cycle (Table 1: up to 4 per cycle).
	IssueWidth int
	// Seed initializes the per-CPU deterministic RNG behind OpRand.
	Seed uint64
}

// CPU is one simulated processor.
type CPU struct {
	id     int
	nprocs int
	cfg    Config
	prog   *isa.Program
	eng    *engine.Engine
	port   Port
	plat   Platform

	regs   [isa.NumRegs]uint64
	pc     int
	halted bool
	rng    uint64

	// Pending-operation bookkeeping, read only by Stall when a run dies
	// of deadlock: what the CPU is blocked on and since when.
	waiting   string // "", or a description of the blocking operation
	waitSince engine.Time

	// Statistics.
	Instructions uint64
	MemOps       uint64
	WorkCycles   uint64
	MemCycles    uint64 // cycles spent with a memory op outstanding
	SpinResults  uint64 // memory results served from tear-off copies
	HaltedAt     engine.Time
}

// New builds a CPU ready to Start.
func New(id, nprocs int, cfg Config, prog *isa.Program, eng *engine.Engine, port Port, plat Platform) *CPU {
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 1
	}
	seed := cfg.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1
	return &CPU{id: id, nprocs: nprocs, cfg: cfg, prog: prog, eng: eng, port: port, plat: plat, rng: seed}
}

// ID returns the processor number.
func (c *CPU) ID() int { return c.id }

// Halted reports whether the CPU has executed HALT.
func (c *CPU) Halted() bool { return c.halted }

// Reg exposes a register value (tests).
func (c *CPU) Reg(r isa.Reg) uint64 { return c.regs[r] }

// SetReg seeds a register before Start (tests and workload setup).
func (c *CPU) SetReg(r isa.Reg, v uint64) {
	if r != isa.R0 {
		c.regs[r] = v
	}
}

// PC exposes the current instruction index (tests).
func (c *CPU) PC() int { return c.pc }

// Stall is one processor's entry in a deadlock dump: where it stopped
// and what, if anything, it is still waiting on.
type Stall struct {
	// CPU is the processor number; PC the instruction index it stopped at.
	CPU int `json:"cpu"`
	PC  int `json:"pc"`
	// Halted is true when the CPU executed HALT normally (it is not part
	// of the deadlock, only of the dump's context).
	Halted bool `json:"halted,omitempty"`
	// Waiting describes the blocking operation ("sc 0x40", "barrier 2"),
	// empty when the CPU is between operations.
	Waiting string `json:"waiting,omitempty"`
	// Since is the cycle the blocking operation was issued.
	Since uint64 `json:"since,omitempty"`
}

// Stall snapshots the CPU's blocking state (deadlock diagnosis; the
// machine is quiescent when this is called).
func (c *CPU) Stall() Stall {
	return Stall{
		CPU:     c.id,
		PC:      c.pc,
		Halted:  c.halted,
		Waiting: c.waiting,
		Since:   uint64(c.waitSince),
	}
}

// Start schedules the first cycle.
func (c *CPU) Start() {
	c.eng.After(0, c.step)
}

func (c *CPU) nextRand(bound int64) uint64 {
	// xorshift64*: deterministic, fast, stdlib-free.
	x := c.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	c.rng = x
	return (x * 0x2545f4914f6cdd1d) >> 1 % uint64(bound)
}

func (c *CPU) write(r isa.Reg, v uint64) {
	if r != isa.R0 {
		c.regs[r] = v
	}
}

// step executes one cycle: up to IssueWidth non-memory instructions, or
// begins one memory / long-latency operation.
func (c *CPU) step(now engine.Time) {
	if c.halted {
		return
	}
	for slots := c.cfg.IssueWidth; slots > 0; slots-- {
		in := c.prog.Code[c.pc]
		if in.Op.IsMemory() {
			c.issueMem(in, now)
			return
		}
		switch in.Op {
		case isa.OpWork:
			c.Instructions++
			c.WorkCycles += uint64(in.Imm)
			c.pc++
			c.eng.At(now+engine.Time(in.Imm)+1, c.step)
			return
		case isa.OpWorkr:
			c.Instructions++
			d := c.regs[in.Rs]
			c.WorkCycles += d
			c.pc++
			c.eng.At(now+engine.Time(d)+1, c.step)
			return
		case isa.OpBar:
			c.Instructions++
			c.pc++
			c.waiting, c.waitSince = fmt.Sprintf("barrier %d", in.Imm), now
			c.plat.Barrier(in.Imm, c.id, func() {
				c.waiting = ""
				c.eng.After(1, c.step)
			})
			return
		case isa.OpHalt:
			c.Instructions++
			c.halted = true
			c.HaltedAt = now
			c.plat.Halted(c.id)
			return
		default:
			c.execALU(in)
		}
	}
	c.eng.At(now+1, c.step)
}

func (c *CPU) execALU(in isa.Instr) {
	c.Instructions++
	rs, rt := c.regs[in.Rs], c.regs[in.Rt]
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		c.write(in.Rd, rs+rt)
	case isa.OpSub:
		c.write(in.Rd, rs-rt)
	case isa.OpMul:
		c.write(in.Rd, rs*rt)
	case isa.OpDiv:
		if rt == 0 {
			c.write(in.Rd, 0)
		} else {
			c.write(in.Rd, uint64(int64(rs)/int64(rt)))
		}
	case isa.OpRem:
		if rt == 0 {
			c.write(in.Rd, 0)
		} else {
			c.write(in.Rd, uint64(int64(rs)%int64(rt)))
		}
	case isa.OpAnd:
		c.write(in.Rd, rs&rt)
	case isa.OpOr:
		c.write(in.Rd, rs|rt)
	case isa.OpXor:
		c.write(in.Rd, rs^rt)
	case isa.OpSlt:
		if int64(rs) < int64(rt) {
			c.write(in.Rd, 1)
		} else {
			c.write(in.Rd, 0)
		}
	case isa.OpAddi:
		c.write(in.Rd, rs+uint64(in.Imm))
	case isa.OpAndi:
		c.write(in.Rd, rs&uint64(in.Imm))
	case isa.OpOri:
		c.write(in.Rd, rs|uint64(in.Imm))
	case isa.OpSlti:
		if int64(rs) < in.Imm {
			c.write(in.Rd, 1)
		} else {
			c.write(in.Rd, 0)
		}
	case isa.OpSll:
		c.write(in.Rd, rs<<uint64(in.Imm))
	case isa.OpSrl:
		c.write(in.Rd, rs>>uint64(in.Imm))
	case isa.OpBeq:
		if rs == rt {
			c.pc = in.Target
			return
		}
	case isa.OpBne:
		if rs != rt {
			c.pc = in.Target
			return
		}
	case isa.OpBlt:
		if int64(rs) < int64(rt) {
			c.pc = in.Target
			return
		}
	case isa.OpBge:
		if int64(rs) >= int64(rt) {
			c.pc = in.Target
			return
		}
	case isa.OpJ:
		c.pc = in.Target
		return
	case isa.OpJal:
		c.write(isa.LR, uint64(c.pc+1))
		c.pc = in.Target
		return
	case isa.OpJr:
		c.pc = int(rs)
		return
	case isa.OpRand:
		c.write(in.Rd, c.nextRand(in.Imm))
	case isa.OpCpuid:
		c.write(in.Rd, uint64(c.id))
	case isa.OpProcs:
		c.write(in.Rd, uint64(c.nprocs))
	default:
		panic(fmt.Sprintf("proc: P%d pc %d: unhandled opcode %s", c.id, c.pc, in.Op))
	}
	c.pc++
}

func (c *CPU) issueMem(in isa.Instr, now engine.Time) {
	c.Instructions++
	c.MemOps++
	addr := mem.Addr(c.regs[in.Rs] + uint64(in.Imm))
	if !addr.Aligned() {
		panic(fmt.Sprintf("proc: P%d pc %d (%s): unaligned address %#x", c.id, c.pc, in.Op, uint64(addr)))
	}
	var kind mem.AccessKind
	var value uint64
	switch in.Op {
	case isa.OpLw:
		kind = mem.Load
	case isa.OpSw:
		kind, value = mem.Store, c.regs[in.Rt]
	case isa.OpLl:
		kind = mem.LoadLinked
	case isa.OpSc:
		kind, value = mem.StoreCond, c.regs[in.Rt]
	case isa.OpSwap:
		kind, value = mem.SwapOp, c.regs[in.Rt]
	case isa.OpEnqolb:
		kind = mem.EnqolbOp
	case isa.OpDeqolb:
		kind = mem.DeqolbOp
	default:
		panic(fmt.Sprintf("proc: non-memory op %s in issueMem", in.Op))
	}
	pc := c.pc
	c.pc++
	c.waiting, c.waitSince = fmt.Sprintf("%s %#x", in.Op, uint64(addr)), now
	c.port.Access(mem.Request{
		Kind:  kind,
		Addr:  addr,
		Value: value,
		PC:    pc,
		Done: func(res mem.Result) {
			c.waiting = ""
			done := c.eng.Now()
			c.MemCycles += uint64(done - now)
			if res.TearOff {
				c.SpinResults++
			}
			switch in.Op {
			case isa.OpLw, isa.OpLl, isa.OpEnqolb:
				c.write(in.Rd, res.Value)
			case isa.OpSc:
				if res.OK {
					c.write(in.Rt, 1)
				} else {
					c.write(in.Rt, 0)
				}
			case isa.OpSwap:
				c.write(in.Rt, res.Value)
			}
			c.eng.After(1, c.step)
		},
	})
}
