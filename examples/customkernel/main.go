// Customkernel shows the low-level API: write your own kernel in the
// simulated ISA, assemble it, and run it on a machine of your choosing.
// Here every processor pushes work items onto a shared stack protected by
// a TTS lock, then pops them all back — under baseline and IQOLB hardware.
package main

import (
	"fmt"
	"log"

	"iqolb"
)

const src = `
	# Shared layout: lock at 0x1000, stack pointer at 0x2000,
	# stack slots from 0x4000 (one word per slot).
	  li   a0, 0x1000        # lock
	  li   a1, 0x2000        # stack top index
	  li   a2, 0x4000        # stack base
	  li   s0, 0             # items pushed by this cpu
	  li   s1, 16            # items per cpu

push_loop:
	  work 200               # produce an item
	  # --- acquire ---
acq1:
	  ll   t1, 0(a0)
	  bne  t1, r0, acq1
	  li   t0, 1
	  sc   t0, 0(a0)
	  beq  t0, r0, acq1
	  # --- push: stack[top++] = cpuid+1 ---
	  lw   t2, 0(a1)
	  sll  t3, t2, 3
	  add  t3, t3, a2
	  cpuid t4
	  addi t4, t4, 1
	  sw   t4, 0(t3)
	  addi t2, t2, 1
	  sw   t2, 0(a1)
	  sw   r0, 0(a0)         # release
	  addi s0, s0, 1
	  blt  s0, s1, push_loop

	  bar  1                 # everyone finished pushing

	  li   s0, 0
pop_loop:
	  # --- acquire ---
acq2:
	  ll   t1, 0(a0)
	  bne  t1, r0, acq2
	  li   t0, 1
	  sc   t0, 0(a0)
	  beq  t0, r0, acq2
	  # --- pop if non-empty ---
	  lw   t2, 0(a1)
	  beq  t2, r0, done_pop
	  addi t2, t2, -1
	  sw   t2, 0(a1)
	  addi s0, s0, 1
done_pop:
	  sw   r0, 0(a0)         # release
	  work 150               # consume
	  lw   t2, 0(a1)
	  bne  t2, r0, pop_loop
	  halt
`

func main() {
	prog, err := iqolb.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	const procs = 8
	for _, mode := range []iqolb.Mode{iqolb.ModeBaseline, iqolb.ModeIQOLB} {
		cfg := iqolb.DefaultMachineConfig(procs, mode)
		m, err := iqolb.NewMachine(cfg, prog, nil)
		if err != nil {
			log.Fatal(err)
		}
		m.RegisterLockAddr(0x1000)
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		top := m.Peek(0x2000)
		fmt.Printf("%-10s %8d cycles, stack top after push+pop: %d (want 0), SC failure rate %.3f\n",
			mode, res.Cycles, top, res.Stats.SCFailureRate())
		if top != 0 {
			log.Fatalf("stack corrupted under %s", mode)
		}
	}
	fmt.Println("\nSame binary, two memory systems; the stack survives both.")
}
