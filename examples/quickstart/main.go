// Quickstart: run one contended-lock benchmark under baseline TTS and
// under IQOLB and compare. The two runs execute byte-identical software —
// only the memory-system mode differs, which is the paper's core claim.
package main

import (
	"fmt"
	"log"

	"iqolb"
)

func main() {
	const procs = 16

	tts, err := iqolb.Run(iqolb.Experiment{
		Benchmark:  "hotlock",
		System:     iqolb.SystemTTS,
		Processors: procs,
	})
	if err != nil {
		log.Fatal(err)
	}
	iq, err := iqolb.Run(iqolb.Experiment{
		Benchmark:  "hotlock",
		System:     iqolb.SystemIQOLB,
		Processors: procs,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hot lock, %d processors, identical TTS LL/SC software:\n\n", procs)
	fmt.Printf("  %-22s %12s %12s %12s\n", "system", "cycles", "bus txs", "SC fails")
	fmt.Printf("  %-22s %12d %12d %12.3f\n", "baseline LL/SC", tts.Cycles, tts.BusTransactions, tts.SCFailureRate)
	fmt.Printf("  %-22s %12d %12d %12.3f\n", "IQOLB", iq.Cycles, iq.BusTransactions, iq.SCFailureRate)
	fmt.Printf("\n  IQOLB speedup: %.2fx with %.1fx less bus traffic\n",
		float64(tts.Cycles)/float64(iq.Cycles),
		float64(tts.BusTransactions)/float64(iq.BusTransactions))
	fmt.Printf("  (tear-off copies sent: %d; delay time-outs: %d)\n", iq.TearOffs, iq.Timeouts)
}
