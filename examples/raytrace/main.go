// Raytrace reproduces the paper's most lock-bound data point: the Raytrace
// work-queue signature (one hot lock, tiny critical sections) across
// machine sizes, comparing TTS, explicit QOLB and IQOLB. This is the
// column of Table 3 where queue-based locking matters most.
package main

import (
	"fmt"
	"log"

	"iqolb"
)

func main() {
	systems := []iqolb.System{iqolb.SystemTTS, iqolb.SystemQOLB, iqolb.SystemIQOLB}
	procCounts := []int{1, 4, 16, 32}

	fmt.Println("raytrace signature: one hot work-queue lock, short tasks")
	fmt.Printf("\n  %-6s", "procs")
	for _, s := range systems {
		fmt.Printf(" %14s", s.Name)
	}
	fmt.Println("   (cycles; speedup over 1-proc TTS)")

	var base uint64
	for _, procs := range procCounts {
		fmt.Printf("  %-6d", procs)
		for _, sys := range systems {
			r, err := iqolb.Run(iqolb.Experiment{
				Benchmark:  "raytrace",
				System:     sys,
				Processors: procs,
			})
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = r.Cycles
			}
			fmt.Printf(" %8d %4.1fx", r.Cycles, float64(base)/float64(r.Cycles))
		}
		fmt.Println()
	}
	fmt.Println("\nAt 32 processors the TTS invalidation storms serialize the machine;")
	fmt.Println("QOLB hands the lock directly to the next waiter, and IQOLB matches it")
	fmt.Println("without any software or ISA change (paper Table 3).")
}
