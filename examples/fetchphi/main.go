// Fetchphi demonstrates the delayed-response scheme (§3.2, Figure 3) on a
// lock-free Fetch&Add counter: under the baseline every contended
// read-modify-write costs two bus transactions and SC retries; with delayed
// responses the LPRFO queue pipelines the updates with one transaction each
// and no retries.
package main

import (
	"fmt"
	"log"

	"iqolb"
)

func main() {
	const (
		procs = 16
		ops   = 1600
		think = 300
	)

	fmt.Printf("Fetch&Add: %d increments of one shared counter, %d processors\n\n", ops, procs)
	fmt.Printf("  %-12s %10s %10s %14s %10s\n", "system", "cycles", "bus txs", "txs/increment", "SC fails")
	for _, sys := range []iqolb.System{iqolb.SystemTTS, iqolb.SystemAggressive, iqolb.SystemDelayed} {
		r, err := iqolb.RunFetchAdd(sys, procs, ops, think)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %10d %10d %14.2f %10.3f\n",
			sys.Name, r.Cycles, r.BusTransactions,
			float64(r.BusTransactions)/float64(ops), r.SCFailureRate)
	}

	fmt.Println("\nThe message sequence behind the numbers (paper Figure 3):")
	out, _, err := iqolb.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}
