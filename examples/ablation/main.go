// Ablation walks the paper's Figure 1 design space — baseline, aggressive
// baseline, delayed response (with/without queue retention), IQOLB
// (with/without retention, without tear-offs) — on one contended lock, and
// then runs the retention and predictor studies.
package main

import (
	"fmt"
	"log"

	"iqolb"
)

func main() {
	const procs = 16

	out, _, err := iqolb.Figure1(iqolb.Options{}, procs, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	ret, err := iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
		Kind: iqolb.SweepRetentionKind, Procs: procs, TotalCS: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ret)

	pred, err := iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
		Kind: iqolb.SweepPredictorKind, Procs: procs, TotalCS: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pred)
}
