// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md for the experiment index). Each benchmark prints the
// artifact it reproduces once per run via b.Log (go test -bench . -v shows
// them), and reports simulated cycles per artifact as the headline metric:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable3 -benchtime=1x -v   # print the table
//
// The table/figure benchmarks default to a reduced scale so the full suite
// stays fast; set -benchtime=1x and edit benchScale for full-paper runs
// (cmd/table3 runs the full configuration directly).
package iqolb_test

import (
	"strings"
	"testing"

	"iqolb"
)

// benchProcs and benchScale size the benchmark runs: large enough to show
// the contended regime, small enough to iterate with.
const (
	benchProcs = 16
	benchScale = 4
)

func reportCycles(b *testing.B, cycles uint64) {
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkTable1ConfigValidation regenerates Table 1 (the machine
// configuration) and validates it.
func BenchmarkTable1ConfigValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := iqolb.Table1()
		if !strings.Contains(out, "L1 data cache") {
			b.Fatal("Table 1 malformed")
		}
	}
	b.Log("\n" + iqolb.Table1())
}

// BenchmarkTable2Workloads regenerates Table 2 (the benchmark inventory),
// building every kernel.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !strings.Contains(iqolb.Table2(), "raytrace") {
			b.Fatal("Table 2 malformed")
		}
	}
	b.Log("\n" + iqolb.Table2())
}

// benchOneSystem runs one benchmark under one system — the building block
// of the Table 3 rows.
func benchOneSystem(b *testing.B, bench string, sys iqolb.System) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := iqolb.Run(iqolb.Experiment{
			Benchmark: bench, System: sys, Processors: benchProcs, ScaleFactor: benchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	reportCycles(b, cycles)
}

// BenchmarkTable3 regenerates every cell of Table 3: each Table 2 benchmark
// under TTS, QOLB and IQOLB.
func BenchmarkTable3(b *testing.B) {
	for _, spec := range iqolb.Benchmarks() {
		for _, sys := range []iqolb.System{iqolb.SystemTTS, iqolb.SystemQOLB, iqolb.SystemIQOLB} {
			b.Run(spec.Name+"/"+sys.Name, func(b *testing.B) {
				benchOneSystem(b, spec.Name, sys)
			})
		}
	}
}

// BenchmarkTable3Full computes the whole table (including the 1-processor
// baselines) exactly as cmd/table3 does, at reduced scale.
func BenchmarkTable3Full(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = iqolb.Table3(iqolb.Options{}, benchProcs, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFigure1Taxonomy regenerates the Figure 1 design-space
// progression (baseline → aggressive → delayed ±retention → IQOLB
// ±retention ±tear-off) on the hot-lock microbenchmark.
func BenchmarkFigure1Taxonomy(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = iqolb.Figure1(iqolb.Options{}, benchProcs, 512)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFigure2Trace regenerates the traditional LL/SC message sequence.
func BenchmarkFigure2Trace(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = iqolb.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFigure3Trace regenerates the delayed-response sequence.
func BenchmarkFigure3Trace(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = iqolb.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFigure4Trace regenerates the IQOLB sequence.
func BenchmarkFigure4Trace(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, _, err = iqolb.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkSweepScaling regenerates the contention-scaling study.
func BenchmarkSweepScaling(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
			Kind: iqolb.SweepScalingKind, Bench: "raytrace",
			ProcCounts: []int{1, 4, 16}, Scale: benchScale * 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkAblationTimeout regenerates the §3.2/§3.3 time-out sensitivity
// study.
func BenchmarkAblationTimeout(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
			Kind: iqolb.SweepTimeoutKind, Procs: benchProcs, TotalCS: 512,
			Budgets: []iqolb.Time{200, 1000, 10000},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkAblationRetention regenerates the queue retention vs. breakdown
// study on false-shared locks.
func BenchmarkAblationRetention(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
			Kind: iqolb.SweepRetentionKind, Procs: benchProcs, TotalCS: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkAblationPredictor regenerates the predictor vs. always-lock
// study.
func BenchmarkAblationPredictor(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
			Kind: iqolb.SweepPredictorKind, Procs: benchProcs, TotalCS: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkExtensionCollocation regenerates the §6 collocation study.
func BenchmarkExtensionCollocation(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
			Kind: iqolb.SweepCollocationKind, Procs: benchProcs, TotalCS: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkExtensionGeneralized regenerates the §6 Generalized IQOLB
// reader/writer study.
func BenchmarkExtensionGeneralized(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = iqolb.Sweep(iqolb.Options{}, iqolb.SweepSpec{
			Kind: iqolb.SweepGeneralizedKind, Procs: benchProcs, TotalCS: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// BenchmarkFetchAddThroughput measures the Fetch&Phi case of §3.2 across
// the three relevant systems (the quantitative side of Figures 2 and 3).
func BenchmarkFetchAddThroughput(b *testing.B) {
	for _, sys := range []iqolb.System{iqolb.SystemTTS, iqolb.SystemAggressive, iqolb.SystemDelayed} {
		b.Run(sys.Name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := iqolb.RunFetchAdd(sys, benchProcs, 512, 200)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			reportCycles(b, cycles)
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer
// (internal/obs) on a contended IQOLB workload. "disabled" is the default
// path every untraced run takes — the probe fan-out slices are empty, so
// each hook reduces to ranging over nothing — and must stay within ~2% of
// pre-observability throughput. "enabled" attaches the full collector
// (lock lifecycle, delays, tear-offs, bus occupancy, barriers) and builds
// the metrics snapshot. BENCH_obs.json tracks measured numbers; the
// sim-cycle side of the contract (instrumented runs are cycle-identical)
// is pinned by TestNoPerturbation in internal/obs.
func BenchmarkObsOverhead(b *testing.B) {
	spec := iqolb.Spec{Bench: "hotlock", System: "iqolb", Procs: benchProcs, Scale: 2}
	b.Run("disabled", func(b *testing.B) {
		var simCycles uint64
		for i := 0; i < b.N; i++ {
			res, err := iqolb.RunSpec(spec)
			if err != nil {
				b.Fatal(err)
			}
			simCycles = res.Cycles
		}
		reportCycles(b, simCycles)
	})
	b.Run("enabled", func(b *testing.B) {
		traced := spec
		traced.Trace = &iqolb.TraceOptions{}
		var events int
		for i := 0; i < b.N; i++ {
			res, err := iqolb.RunSpec(traced)
			if err != nil {
				b.Fatal(err)
			}
			if res.Obs == nil {
				b.Fatal("traced run produced no snapshot")
			}
			events = res.Obs.Events
		}
		b.ReportMetric(float64(events), "events")
	})
}

// BenchmarkSimulatorThroughput measures the simulator itself: host time per
// simulated cycle on a contended IQOLB workload (a performance regression
// guard for the engine and protocol fast paths).
func BenchmarkSimulatorThroughput(b *testing.B) {
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		res, err := iqolb.Run(iqolb.Experiment{
			Benchmark: "hotlock", System: iqolb.SystemIQOLB, Processors: benchProcs, ScaleFactor: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles
	}
	b.ReportMetric(float64(simCycles)/float64(b.Elapsed().Nanoseconds())*1000, "simMcycles/s")
}
