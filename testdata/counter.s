# Contended shared counter under a TTS lock: the default demo kernel for
# iqolbrun. Each processor performs 10 increments; the result at address 0
# must equal 10 * procs under every hardware mode.
  li   a0, 0x1000        # lock
  li   s0, 0
  li   s1, 10
loop:
spin:
  ll   t1, 0(a0)
  bne  t1, r0, spin
  li   t0, 1
  sc   t0, 0(a0)
  beq  t0, r0, spin
  lw   t2, 0(gp)         # gp = 0: the counter
  addi t2, t2, 1
  sw   t2, 0(gp)
  sw   r0, 0(a0)         # release
  addi s0, s0, 1
  blt  s0, s1, loop
  halt
