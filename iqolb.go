// Package iqolb is a library-level reproduction of Rajwar, Kägi & Goodman,
// "Improving the Throughput of Synchronization by Insertion of Delays"
// (HPCA 2000): Implicit QOLB, a purely hardware queue-based lock built from
// speculation about LL/SC usage and bounded delays of coherence responses.
//
// The package fronts a deterministic execution-driven simulator of a
// bus-based shared-memory multiprocessor (Table 1 of the paper): MIPS-like
// cores interpreting a small ISA, two-level caches, a broadcast MOESI
// snooping protocol over a split-transaction address bus and crossbar data
// network, a banked memory controller, and — the paper's contribution — the
// LPRFO/delayed-response/IQOLB machinery with its lock predictor, held-locks
// table, tear-off copies and queue-retention alternatives, plus an explicit
// QOLB implementation as the comparison primitive.
//
// # Quick start
//
//	res, err := iqolb.RunSpec(iqolb.Spec{
//	    Bench:  "raytrace",
//	    System: "iqolb",
//	    Procs:  32,
//	})
//
// Spec is the one canonical run description: the same struct drives the
// serial RunSpec, the parallel cached RunSpecs harness, the parameter
// sweeps (Sweep with a SweepSpec), and the CLIs. Setting Spec.Trace (or
// Options.Obs for a whole batch) turns on the cycle-accurate
// observability layer: per-lock contention profiles in Result.Obs and a
// Perfetto-loadable trace export.
//
// The same TTS LL/SC software runs under every hardware mode; switching
// System from "tts" to "iqolb" changes only the memory system, which is
// the paper's point. See EXPERIMENTS.md for the reproduced tables and
// figures, and DESIGN.md for the modeling substitutions.
package iqolb

import (
	"iqolb/internal/check"
	"iqolb/internal/coherence"
	"iqolb/internal/core"
	"iqolb/internal/engine"
	"iqolb/internal/experiments"
	"iqolb/internal/faults"
	"iqolb/internal/harness"
	"iqolb/internal/isa"
	"iqolb/internal/machine"
	"iqolb/internal/mem"
	"iqolb/internal/obs"
	"iqolb/internal/stats"
	"iqolb/internal/synclib"
	"iqolb/internal/trace"
	"iqolb/internal/workload"
)

// Core simulator vocabulary, re-exported for programmatic use.
type (
	// Mode is the hardware synchronization mechanism (Figure 1):
	// baseline, aggressive, delayed, iqolb.
	Mode = core.Mode
	// CoreConfig parameterizes the delay/speculation policy.
	CoreConfig = core.Config
	// Timing carries the Table 1 latency parameters.
	Timing = coherence.Timing
	// CacheGeometry carries the Table 1 cache organizations.
	CacheGeometry = coherence.CacheGeometry
	// MachineConfig describes a whole simulated machine.
	MachineConfig = machine.Config
	// Machine is an assembled system, able to run one program.
	Machine = machine.Machine
	// MachineResult is a completed run's raw measurements.
	MachineResult = machine.Result
	// MachineStats aggregates the memory-system counters of a run.
	MachineStats = stats.Machine
	// Program is an assembled program in the simulated ISA.
	Program = isa.Program
	// Builder constructs programs programmatically.
	Builder = isa.Builder
	// Addr is a byte address in the simulated shared memory.
	Addr = mem.Addr
	// Time is a cycle count.
	Time = engine.Time
	// Primitive names a software lock implementation.
	Primitive = synclib.Primitive
	// System pairs a software primitive with a hardware mode.
	System = experiments.System
	// WorkloadParams is a kernel's synchronization signature.
	WorkloadParams = workload.Params
	// BenchmarkSpec is a named Table 2 benchmark.
	BenchmarkSpec = workload.Spec
	// Recorder captures coherence-message traces (Figures 2–4).
	Recorder = trace.Recorder
	// Result is one experiment's summarized measurements.
	Result = experiments.Result
	// Spec canonically describes one simulation job for the harness.
	// Every entry point — serial RunSpec, batched RunSpecs, and the CLIs
	// — flows through it; Spec.Trace turns on the observability layer.
	Spec = experiments.Spec
	// Options configures the parallel harness (worker count, result
	// cache, run artifacts, progress stream, batch-wide tracing via
	// Options.Obs). The zero value runs on runtime.NumCPU() workers with
	// caching and artifacts off.
	Options = experiments.Options
	// Manifest is a harness batch's aggregate run artifact.
	Manifest = harness.Manifest
	// TraceOptions enables the observability layer for one Spec (see
	// Spec.Trace): metrics snapshot collection plus an optional Perfetto
	// (Chrome trace-event JSON) export.
	TraceOptions = experiments.TraceOptions
	// Snapshot is the observability layer's end-of-run metrics summary:
	// per-lock contention profiles (hold-time, hand-off and wait
	// histograms; fairness), bus occupancy maxima, barrier spans.
	Snapshot = obs.Snapshot
	// LockProfile is one lock's contention profile within a Snapshot.
	LockProfile = obs.LockProfile
	// SweepSpec canonically describes one parameter sweep for Sweep.
	SweepSpec = experiments.SweepSpec
	// SweepKind selects which study a SweepSpec runs.
	SweepKind = experiments.SweepKind
	// SweepSpecError pinpoints the unusable field of a rejected
	// SweepSpec; it unwraps to ErrInvalidSweepSpec.
	SweepSpecError = experiments.SweepSpecError
	// FaultPlan arms a deterministic fault-injection plan on a Spec or
	// MachineConfig (nil = clean run). Plans enter the result-cache key.
	FaultPlan = faults.Plan
	// FaultKind names one injectable fault (see FaultKinds).
	FaultKind = faults.Kind
	// DeadlockError is the typed diagnosis of a run whose event queue
	// drained with processors still unhalted; it carries a
	// per-processor stall dump and unwraps to ErrDeadlock.
	DeadlockError = machine.DeadlockError
	// ViolationError is the typed diagnosis of a run whose invariant
	// monitor recorded breaches; it unwraps to ErrProtocolViolation.
	ViolationError = check.ViolationError
	// CampaignConfig parameterizes RunCampaign.
	CampaignConfig = experiments.CampaignConfig
	// CampaignReport is a fault campaign's deterministic aggregate.
	CampaignReport = experiments.CampaignReport
	// FaultOutcome is one (kind, seed) campaign run's classified result.
	FaultOutcome = experiments.FaultOutcome
)

// ErrCycleLimit marks a simulation aborted at the engine's cycle limit;
// its measurements would be truncated. Detect it with errors.Is.
var ErrCycleLimit = experiments.ErrCycleLimit

// ErrInvalidSweepSpec is the sentinel wrapped by every SweepSpec
// validation failure. Detect it with errors.Is.
var ErrInvalidSweepSpec = experiments.ErrInvalidSweepSpec

// ErrDeadlock marks a run whose event queue drained before every
// processor halted; the concrete error is a *DeadlockError. Detect it
// with errors.Is.
var ErrDeadlock = machine.ErrDeadlock

// ErrProtocolViolation marks a run failed by the invariant monitors;
// the concrete error is a *ViolationError. Detect it with errors.Is.
var ErrProtocolViolation = check.ErrProtocolViolation

// FaultKinds lists every injectable fault kind.
func FaultKinds() []FaultKind { return faults.Kinds() }

// ParseFaultKinds parses a comma-separated fault-kind list ("all" or
// "*" selects every kind; "" selects none).
func ParseFaultKinds(s string) ([]FaultKind, error) { return faults.ParseKinds(s) }

// RunCampaign sweeps the configured fault kinds and seeds over the base
// spec, classifying each run against a clean reference: recovered,
// absorbed, or a typed diagnosis. Same spec + config → byte-identical
// report.
func RunCampaign(base Spec, c CampaignConfig) (*CampaignReport, error) {
	return experiments.RunCampaign(base, c)
}

// The sweep studies selectable through SweepSpec.Kind.
const (
	SweepScalingKind     = experiments.SweepScalingKind
	SweepTimeoutKind     = experiments.SweepTimeoutKind
	SweepRetentionKind   = experiments.SweepRetentionKind
	SweepCollocationKind = experiments.SweepCollocationKind
	SweepPredictorKind   = experiments.SweepPredictorKind
	SweepGeneralizedKind = experiments.SweepGeneralizedKind
)

// DefaultCacheDir is the conventional on-disk result cache location.
const DefaultCacheDir = harness.DefaultCacheDir

// Hardware modes (the Figure 1 progression).
const (
	ModeBaseline   = core.ModeBaseline
	ModeAggressive = core.ModeAggressive
	ModeDelayed    = core.ModeDelayed
	ModeIQOLB      = core.ModeIQOLB
)

// Software lock primitives.
const (
	PrimTTS    = synclib.PrimTTS
	PrimQOLB   = synclib.PrimQOLB
	PrimTicket = synclib.PrimTicket
	PrimMCS    = synclib.PrimMCS
)

// The evaluated systems. SystemTTS, SystemDelayed and SystemIQOLB run
// byte-identical software.
var (
	SystemTTS          = experiments.SysTTS
	SystemAggressive   = experiments.SysAggressive
	SystemDelayed      = experiments.SysDelayed
	SystemDelayedNoRet = experiments.SysDelayedNoRet
	SystemIQOLB        = experiments.SysIQOLB
	SystemIQOLBNoRet   = experiments.SysIQOLBNoRet
	SystemGeneralized  = experiments.SysGeneralized
	SystemQOLB         = experiments.SysQOLB
	SystemTicket       = experiments.SysTicket
	SystemMCS          = experiments.SysMCS
)

// Systems lists every available system configuration.
func Systems() []System { return experiments.Systems() }

// SystemByName resolves a system by its CLI name.
func SystemByName(name string) (System, error) { return experiments.SystemByName(name) }

// Benchmarks returns the Table 2 benchmark set.
func Benchmarks() []BenchmarkSpec { return workload.Specs() }

// Microbenchmarks returns the additional kernels used by the sweeps.
func Microbenchmarks() []BenchmarkSpec { return workload.MicroSpecs() }

// BenchmarkByName resolves a benchmark or microbenchmark.
func BenchmarkByName(name string) (BenchmarkSpec, error) { return workload.ByName(name) }

// DefaultMachineConfig returns the paper's Table 1 machine for n
// processors under the given hardware mode.
func DefaultMachineConfig(n int, mode Mode) MachineConfig {
	return machine.DefaultConfig(n, mode)
}

// NewMachine assembles a machine that runs prog on every processor
// (programs branch on the CPUID instruction to differentiate roles).
// rec may be nil.
func NewMachine(cfg MachineConfig, prog *Program, rec *Recorder) (*Machine, error) {
	return machine.New(cfg, prog, rec)
}

// Assemble parses assembler text into a Program (see internal/isa for the
// syntax: a MIPS-like ISA with ll/sc, swap, enqolb/deqolb, work and bar).
func Assemble(src string) (*Program, error) { return isa.Assemble(src) }

// NewBuilder starts a programmatic program builder.
func NewBuilder() *Builder { return isa.NewBuilder() }

// Experiment describes one benchmark run.
//
// Deprecated: Experiment predates Spec and describes a strict subset of
// it. Build a Spec instead (Experiment.Spec converts) — Spec is the one
// canonical config struct shared by RunSpec, the harness, and the CLIs,
// and it carries the options Experiment lacks (policy overrides,
// kernels, tracing).
type Experiment struct {
	// Benchmark names a Table 2 benchmark or microbenchmark.
	Benchmark string
	// System selects the primitive/hardware pairing.
	System System
	// Processors is the machine size (the paper evaluates 32).
	Processors int
	// ScaleFactor > 1 shrinks the workload proportionally for quick runs.
	ScaleFactor int
	// Check runs the experiment under the internal/check
	// protocol-invariant monitors; any violation fails the run.
	Check bool
}

// Spec converts the experiment to the equivalent canonical Spec.
func (e Experiment) Spec() Spec {
	scale := e.ScaleFactor
	if scale < 1 {
		scale = 1
	}
	return Spec{
		Bench: e.Benchmark, System: e.System.Name,
		Procs: e.Processors, Scale: scale, Check: e.Check,
	}
}

// Run executes the experiment, verifying the workload's mutual-exclusion
// counters before returning measurements.
//
// Deprecated: Use RunSpec (Run is now a thin shim over it via
// Experiment.Spec).
func Run(e Experiment) (Result, error) {
	return RunSpec(e.Spec())
}

// RunParams executes a custom synchronization signature under a system.
func RunParams(name string, p WorkloadParams, sys System, procs int) (Result, error) {
	return experiments.RunParams(name, p, sys, procs, nil)
}

// RunFetchAdd executes the lock-free Fetch&Add kernel (the paper's
// Fetch&Phi case) under a system.
func RunFetchAdd(sys System, procs, totalOps int, think int64) (Result, error) {
	return experiments.RunFetchAdd(sys, procs, totalOps, think)
}

// RunSpec resolves and executes one experiment spec serially.
func RunSpec(s Spec) (Result, error) { return experiments.RunSpec(s) }

// RunSpecs executes a batch of experiment specs through the parallel
// harness: jobs fan out across a bounded worker pool, completed results
// are memoized in the on-disk cache keyed by a stable hash of each
// job's canonical configuration, and the results come back in spec
// order (independent of completion order). The manifest carries
// per-job wall times, sim-cycle counts, lock hand-off latency
// percentiles and cache hit/miss statistics.
func RunSpecs(opt Options, specs []Spec) ([]Result, *Manifest, error) {
	return experiments.RunSpecs(opt, specs)
}

// Table1 renders the configured system parameters (paper Table 1).
func Table1() string { return experiments.Table1() }

// Table2 renders the benchmark inventory (paper Table 2).
func Table2() string { return experiments.Table2() }

// Table3 reproduces the paper's results table at the given machine size
// through the parallel harness, returning the rendered table and the raw
// rows. Options{} runs uncached on runtime.NumCPU() workers.
func Table3(opt Options, procs, scaleFactor int) (string, []experiments.Table3Row, error) {
	return experiments.Table3(opt, procs, scaleFactor)
}

// Figure1 runs the Figure 1 design-space progression on a hot lock.
func Figure1(opt Options, procs, totalCS int) (string, []Result, error) {
	return experiments.Figure1(opt, procs, totalCS)
}

// Figure2 renders the traditional LL/SC message sequence (paper Figure 2).
func Figure2() (string, *Recorder, error) { return experiments.Figure2() }

// Figure3 renders the delayed-response sequence (paper Figure 3).
func Figure3() (string, *Recorder, error) { return experiments.Figure3() }

// Figure4 renders the IQOLB sequence (paper Figure 4).
func Figure4() (string, *Recorder, error) { return experiments.Figure4() }

// Sweep validates the spec and runs the selected parameter study through
// the parallel harness, returning the rendered table. Validation
// failures wrap ErrInvalidSweepSpec and carry field detail in a
// *SweepSpecError. This is the single sweep entry point.
func Sweep(opt Options, s SweepSpec) (string, error) {
	return experiments.Sweep(opt, s)
}

// SweepKinds lists every sweep study in a stable order.
func SweepKinds() []SweepKind { return experiments.SweepKinds() }
