package iqolb_test

import (
	"strings"
	"testing"

	"iqolb"
)

func TestRunQuick(t *testing.T) {
	res, err := iqolb.Run(iqolb.Experiment{
		Benchmark: "hotlock", System: iqolb.SystemIQOLB, Processors: 4, ScaleFactor: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.System != "iqolb" {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestSystemsAndBenchmarksEnumerate(t *testing.T) {
	if len(iqolb.Systems()) < 8 {
		t.Fatal("missing systems")
	}
	if len(iqolb.Benchmarks()) != 5 {
		t.Fatal("want the five Table 2 benchmarks")
	}
	if len(iqolb.Microbenchmarks()) < 3 {
		t.Fatal("missing microbenchmarks")
	}
	if _, err := iqolb.BenchmarkByName("barnes"); err != nil {
		t.Fatal(err)
	}
	if _, err := iqolb.SystemByName("qolb"); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleAndRunMachine(t *testing.T) {
	prog, err := iqolb.Assemble(`
	  cpuid t0
	  sll   t0, t0, 3
	  li    t1, 4096
	  add   t1, t1, t0
	  li    t2, 7
	  sw    t2, 0(t1)      # each cpu writes its own word
	  bar   1
	  halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := iqolb.NewMachine(iqolb.DefaultMachineConfig(4, iqolb.ModeBaseline), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("hit limit")
	}
	for i := 0; i < 4; i++ {
		if got := m.Peek(iqolb.Addr(4096 + 8*i)); got != 7 {
			t.Fatalf("cpu %d word = %d, want 7", i, got)
		}
	}
}

func TestBuilderAPI(t *testing.T) {
	b := iqolb.NewBuilder()
	b.Li(2, 42).Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := iqolb.NewMachine(iqolb.DefaultMachineConfig(1, iqolb.ModeBaseline), prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.CPU(0).Reg(2) != 42 {
		t.Fatal("builder program did not execute")
	}
}

func TestTablesRenderViaFacade(t *testing.T) {
	if !strings.Contains(iqolb.Table1(), "Table 1") {
		t.Error("Table1 broken")
	}
	if !strings.Contains(iqolb.Table2(), "Table 2") {
		t.Error("Table2 broken")
	}
}

func TestRunParamsCustomSignature(t *testing.T) {
	p := iqolb.WorkloadParams{
		Iterations: 1, TotalCS: 64, Locks: 2, HotPct: 50,
		CSWork: 10, ThinkWork: 100,
	}
	res, err := iqolb.RunParams("custom", p, iqolb.SystemDelayed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}
