// Command table3 reproduces the paper's Table 3: absolute TTS speedups and
// QOLB/IQOLB speedups relative to TTS for the five benchmarks, side by side
// with the published numbers.
//
//	table3                 # full scale, 32 processors (the paper's setup)
//	table3 -procs 8 -scale 4   # quick smoke run
package main

import (
	"flag"
	"fmt"
	"os"

	"iqolb"
)

func main() {
	procs := flag.Int("procs", 32, "processor count")
	scale := flag.Int("scale", 1, "divide the workloads by this factor")
	flag.Parse()

	out, _, err := iqolb.Table3(*procs, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table3:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
