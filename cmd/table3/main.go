// Command table3 reproduces the paper's Table 3: absolute TTS speedups and
// QOLB/IQOLB speedups relative to TTS for the five benchmarks, side by side
// with the published numbers.
//
// The 4 × 5 benchmark/system grid fans out across a bounded worker pool
// (-j, default all CPUs), and each cell's simulation is memoized on disk
// so a repeated run is served entirely from cache. The rendered table is
// byte-identical to a serial (-j 1) run regardless of worker count.
//
//	table3                     # full scale, 32 processors (the paper's setup)
//	table3 -procs 8 -scale 4   # quick smoke run
//	table3 -j 8 -artifacts out # 8 workers, JSON artifacts + manifest in out/
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"iqolb"
)

func main() {
	var (
		procs = flag.Int("procs", 32, "processor count")
		scale = flag.Int("scale", 1, "divide the workloads by this factor")

		jobs      = flag.Int("j", runtime.NumCPU(), "parallel simulation workers")
		noCache   = flag.Bool("no-cache", false, "always simulate; do not read or write the result cache")
		cacheDir  = flag.String("cache-dir", iqolb.DefaultCacheDir, "on-disk result cache location")
		artifacts = flag.String("artifacts", "", "write per-job result JSON and the run manifest to this directory")
		quiet     = flag.Bool("q", false, "suppress progress output on stderr")
		keepGoing = flag.Bool("keep-going", false, "run every cell even after one fails; failed cells are recorded in the manifest")
	)
	flag.Parse()

	opt := iqolb.Options{Jobs: *jobs, CacheDir: *cacheDir, ArtifactDir: *artifacts, KeepGoing: *keepGoing}
	if *noCache {
		opt.CacheDir = ""
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	out, _, err := iqolb.Table3(opt, *procs, *scale)
	if err != nil {
		if errors.Is(err, iqolb.ErrCycleLimit) {
			fmt.Fprintf(os.Stderr, "table3: %v\n", err)
			fmt.Fprintln(os.Stderr, "table3: a simulation hit the engine's cycle limit — its results would be truncated; shrink the workload (-scale) or the machine (-procs)")
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "table3:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
