// Command lockserve runs the lock-lease service over TCP: named
// resources sharded across native lock primitives (package locks), a
// bounded admission queue whose backpressure is the serving-layer
// analogue of the paper's delay insertion, leases with deadlines, and a
// starvation watchdog that degrades a pathological shard to a plain
// mutex in shed-load mode.
//
//	lockserve -addr 127.0.0.1:7007
//	lockserve -addr 127.0.0.1:0 -shards 16 -lock mcs -policy handoff
//	lockserve -policy broadcast -queue 32 -ttl 2s
//	lockserve -adaptive                      # contention controller live-migrates shard policies
//
// With -adaptive the service runs the per-shard contention controller
// (internal/adaptive): windowed estimators over queue depth, shed rate,
// and acquire rate migrate each shard between handoff and broadcast
// grant policies — and tune the native locks' inserted delays — as the
// offered load shifts. The -policy flag then picks the starting policy,
// and the shutdown snapshot includes a "controller" block.
//
// The serving hot path pipelines: wire-v3 clients carry up to -window
// concurrent requests per connection, and -flush-delay holds each
// response socket briefly so completions batch into one write syscall
// (delay-inserted write coalescing — the paper's throughput-for-p50
// trade on the transmit path). -pprof serves net/http/pprof for
// profiling the hot path under load.
//
// The bound address is printed on stdout ("listening on <addr>") so
// harnesses can use :0 and scrape the port. SIGINT/SIGTERM shut down
// gracefully: stop accepting, flush queued waiters with the typed
// draining verdict, give live leases -drain-grace to release (then
// revoke stragglers), drain connection goroutines, and print a final
// counter snapshot to stderr. -idle-timeout reaps half-open peers;
// -retry-after attaches the anti-herd delay hint to wire-v2 refusals.
//
// Exit codes follow the repo convention (see README): 0 clean shutdown,
// 1 runtime failure, 2 unusable configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof registers these handlers on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	"iqolb/internal/cliconfig"
	"iqolb/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7007", "TCP listen address (use :0 for an ephemeral port)")
		shards    = flag.Int("shards", 8, "number of resource shards")
		lockKind  = flag.String("lock", "mcs", "shard guard primitive (tts ticket mcs clh adaptive)")
		policy    = flag.String("policy", "handoff", `grant policy: "handoff" (direct transfer) or "broadcast" (wake all, re-contend)`)
		queue     = flag.Int("queue", 64, "bounded admission queue depth per shard")
		ttl       = flag.Duration("ttl", 5*time.Second, "default lease TTL")
		maxTTL    = flag.Duration("max-ttl", 60*time.Second, "maximum client-requested TTL")
		starve    = flag.Duration("starvation-bound", 10*time.Second, "oldest-waiter age that degrades a shard (<0 disables)")
		adapt      = flag.Bool("adaptive", false, "run the contention controller (live per-shard policy migration + lock tuning)")
		ctrlEvery  = flag.Duration("adaptive-interval", 25*time.Millisecond, "controller sampling period (with -adaptive)")
		drainGrace = flag.Duration("drain-grace", 2*time.Second, "graceful-drain window on SIGINT/SIGTERM: live leases get this long to release before revocation (0 = immediate close)")
		idleConn   = flag.Duration("idle-timeout", 2*time.Minute, "reap connections idle this long (half-open peers included; 0 = never)")
		retryAfter = flag.Duration("retry-after", 2*time.Millisecond, "retry-after hint attached to wire-v2 shed-class refusals (0 = no hint)")
		flushDelay = flag.Duration("flush-delay", 0, "hold each connection's response socket up to this long to coalesce frames into one write syscall (0 = write through)")
		window     = flag.Int("window", service.DefaultWindow, "max concurrently-executing pipelined (wire v3) requests per connection")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
		statsDump  = flag.Bool("stats", true, "print a JSON counter snapshot to stderr on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lockserve [flags]")
		os.Exit(2)
	}

	pol, err := service.ParsePolicy(*policy)
	usage(err)
	kind, err := cliconfig.LockKind(*lockKind)
	usage(err)
	svc, err := service.New(service.Config{
		Shards:           *shards,
		Lock:             kind,
		Policy:           pol,
		QueueDepth:       *queue,
		DefaultTTL:       *ttl,
		MaxTTL:           *maxTTL,
		StarvationBound:  *starve,
		Adaptive:         *adapt,
		AdaptiveInterval: *ctrlEvery,
		OnDegrade: func(shard int, reason string) {
			fmt.Fprintf(os.Stderr, "lockserve: shard %d degraded: %s\n", shard, reason)
		},
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lockserve: pprof on http://%s/debug/pprof/\n", pln.Addr())
		// DefaultServeMux carries the net/http/pprof handlers via the
		// blank import above.
		go http.Serve(pln, nil)
	}

	srv := service.NewServerWithOptions(svc, service.ServerOptions{
		IdleTimeout: *idleConn,
		RetryAfter:  *retryAfter,
		FlushDelay:  *flushDelay,
		Window:      *window,
	})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "lockserve: %v: shutting down\n", s)
	case err := <-serveErr:
		if err != nil {
			fail(err)
		}
	}

	// Graceful: stop accepting, flush queued waiters (typed ErrDraining),
	// give live leases the grace window to release, revoke stragglers,
	// then close sockets and drain connection goroutines.
	if *drainGrace > 0 {
		if err := srv.Drain(*drainGrace); err != nil {
			fail(err)
		}
	}
	svc.Close()
	if err := srv.Close(); err != nil {
		fail(err)
	}
	if *statsDump {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(svc.Snapshot()); err != nil {
			fail(err)
		}
	}
}

func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockserve:", err)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lockserve:", err)
	os.Exit(cliconfig.ExitCode(err))
}
