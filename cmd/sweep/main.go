// Command sweep runs the ablation and extension studies listed in
// DESIGN.md:
//
//	sweep -study scaling -bench raytrace       # contention scaling 1..32
//	sweep -study timeout                       # §3.2/§3.3 time-out budgets
//	sweep -study retention                     # queue retention vs breakdown
//	sweep -study collocation                   # §6 collocation extension
//	sweep -study predictor                     # §3.4 predictor vs always-lock
//	sweep -study generalized                   # §6 Generalized IQOLB
//
// Every study fans its configurations out across a bounded worker pool
// (-j, default all CPUs) and memoizes completed simulations on disk
// (-cache-dir, -no-cache); the rendered tables are byte-identical to a
// serial run regardless of worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"iqolb"
)

func main() {
	var (
		study = flag.String("study", "scaling", "scaling | timeout | retention | collocation | predictor | generalized")
		bench = flag.String("bench", "raytrace", "benchmark for the scaling study")
		procs = flag.Int("procs", 16, "processor count for the fixed-size studies")
		cs    = flag.Int("cs", 1024, "critical sections for the fixed-size studies")
		scale = flag.Int("scale", 1, "divide the scaling-study workload by this factor")

		jobs      = flag.Int("j", runtime.NumCPU(), "parallel simulation workers")
		noCache   = flag.Bool("no-cache", false, "always simulate; do not read or write the result cache")
		cacheDir  = flag.String("cache-dir", iqolb.DefaultCacheDir, "on-disk result cache location")
		artifacts = flag.String("artifacts", "", "write per-job result JSON and the run manifest to this directory")
		quiet     = flag.Bool("q", false, "suppress progress output on stderr")
		checked   = flag.Bool("check", false, "run every job under the protocol-invariant monitors (internal/check)")
		traceDir  = flag.String("trace-dir", "", "trace every job: write per-job Perfetto exports to this directory (disables the result cache for the run)")

		faultsFlag = flag.String("faults", "", `inject faults into every job: comma-separated kind names or "all"`)
		faultSeed  = flag.Uint64("fault-seed", 1, "deterministic seed for the fault plan")
		faultRate  = flag.Float64("fault-rate", 0, "per-opportunity injection probability (0 = always)")
		keepGoing  = flag.Bool("keep-going", false, "run every job even after one fails; failed jobs are recorded in the manifest")
	)
	flag.Parse()

	opt := iqolb.Options{Jobs: *jobs, CacheDir: *cacheDir, ArtifactDir: *artifacts, Check: *checked, Obs: *traceDir, KeepGoing: *keepGoing}
	if *faultsFlag != "" {
		kinds, err := iqolb.ParseFaultKinds(*faultsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(2)
		}
		opt.Faults = &iqolb.FaultPlan{Seed: *faultSeed, Kinds: kinds, Rate: *faultRate, Degrade: true}
	}
	if *noCache {
		opt.CacheDir = ""
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	out, err := iqolb.Sweep(opt, iqolb.SweepSpec{
		Kind:       iqolb.SweepKind(*study),
		Bench:      *bench,
		Procs:      *procs,
		ProcCounts: []int{1, 2, 4, 8, 16, 32},
		TotalCS:    *cs,
		Budgets:    []iqolb.Time{200, 500, 1000, 5000, 10000, 50000},
		Scale:      *scale,
	})
	if err != nil {
		var specErr *iqolb.SweepSpecError
		switch {
		case errors.As(err, &specErr):
			fmt.Fprintf(os.Stderr, "sweep: %v\n", specErr)
			if specErr.Field == "Kind" {
				kinds := make([]string, 0, 6)
				for _, k := range iqolb.SweepKinds() {
					kinds = append(kinds, string(k))
				}
				fmt.Fprintf(os.Stderr, "sweep: available studies: %s\n", strings.Join(kinds, " | "))
			}
			os.Exit(2)
		case errors.Is(err, iqolb.ErrDeadlock):
			// The typed diagnosis carries a per-processor stall dump;
			// print it whole so the wedged synchronization is visible.
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(3)
		case errors.Is(err, iqolb.ErrCycleLimit):
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			fmt.Fprintln(os.Stderr, "sweep: a simulation hit the engine's cycle limit — its results would be truncated; shrink the workload (-scale, -cs) or the machine (-procs)")
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
