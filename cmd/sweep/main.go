// Command sweep runs the ablation and extension studies listed in
// DESIGN.md:
//
//	sweep -study scaling -bench raytrace       # contention scaling 1..32
//	sweep -study timeout                       # §3.2/§3.3 time-out budgets
//	sweep -study retention                     # queue retention vs breakdown
//	sweep -study collocation                   # §6 collocation extension
//	sweep -study predictor                     # §3.4 predictor vs always-lock
//	sweep -study generalized                   # §6 Generalized IQOLB
package main

import (
	"flag"
	"fmt"
	"os"

	"iqolb"
)

func main() {
	var (
		study = flag.String("study", "scaling", "scaling | timeout | retention | collocation | predictor | generalized")
		bench = flag.String("bench", "raytrace", "benchmark for the scaling study")
		procs = flag.Int("procs", 16, "processor count for the fixed-size studies")
		cs    = flag.Int("cs", 1024, "critical sections for the fixed-size studies")
		scale = flag.Int("scale", 1, "divide the scaling-study workload by this factor")
	)
	flag.Parse()

	var (
		out string
		err error
	)
	switch *study {
	case "scaling":
		out, err = iqolb.SweepScaling(*bench, []int{1, 2, 4, 8, 16, 32}, *scale)
	case "timeout":
		out, err = iqolb.SweepTimeout(*procs, *cs, []iqolb.Time{200, 500, 1000, 5000, 10000, 50000})
	case "retention":
		out, err = iqolb.SweepRetention(*procs, *cs)
	case "collocation":
		out, err = iqolb.SweepCollocation(*procs, *cs)
	case "predictor":
		out, err = iqolb.SweepPredictor(*procs, *cs)
	case "generalized":
		out, err = iqolb.SweepGeneralized(*procs, *cs)
	default:
		err = fmt.Errorf("unknown study %q", *study)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
