// Command iqolbrun assembles a program in the simulated ISA and runs it on
// the modeled multiprocessor — the playground for writing custom kernels.
//
//	iqolbrun -procs 4 -mode iqolb prog.s
//	iqolbrun -dump prog.s          # show the disassembly and exit
//	iqolbrun -peek 0x2000 prog.s   # print a memory word after the run
//
// Programs see the documented ISA (ll/sc, swap, enqolb/deqolb, work, bar,
// cpuid, rand, ...); all processors run the same program and branch on
// cpuid for per-processor roles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"iqolb"
)

func main() {
	var (
		procs = flag.Int("procs", 4, "processor count")
		mode  = flag.String("mode", "baseline", "hardware mode: baseline | aggressive | delayed | iqolb")
		limit = flag.Uint64("limit", 1_000_000_000, "cycle limit (0 = none)")
		dump  = flag.Bool("dump", false, "print the disassembly and exit")
		peeks peekList
		locks lockList
	)
	flag.Var(&peeks, "peek", "memory address to print after the run (repeatable; 0x hex ok)")
	flag.Var(&locks, "lock", "lock address to register for hand-off statistics (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iqolbrun [flags] program.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)
	prog, err := iqolb.Assemble(string(src))
	fail(err)
	if *dump {
		fmt.Print(prog.Disassemble())
		return
	}

	var m iqolb.Mode
	switch *mode {
	case "baseline":
		m = iqolb.ModeBaseline
	case "aggressive":
		m = iqolb.ModeAggressive
	case "delayed":
		m = iqolb.ModeDelayed
	case "iqolb":
		m = iqolb.ModeIQOLB
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	cfg := iqolb.DefaultMachineConfig(*procs, m)
	cfg.CycleLimit = iqolb.Time(*limit)
	mach, err := iqolb.NewMachine(cfg, prog, nil)
	fail(err)
	for _, l := range locks {
		mach.RegisterLockAddr(iqolb.Addr(l))
	}
	res, err := mach.Run()
	fail(err)
	if res.HitLimit {
		fail(fmt.Errorf("hit the cycle limit (%d); raise -limit or fix the kernel", *limit))
	}

	fmt.Printf("completed in %d cycles on %d processors (%s mode)\n", res.Cycles, *procs, *mode)
	fmt.Printf("  bus transactions: %d   SC failure rate: %.3f\n",
		res.Stats.BusTransactions, res.Stats.SCFailureRate())
	for i, c := range res.PerCPU {
		fmt.Printf("  cpu %-2d: %8d instructions, %6d mem ops, halted at %d\n",
			i, c.Instructions, c.MemOps, c.HaltedAt)
	}
	for _, a := range peeks {
		fmt.Printf("  mem[%#x] = %d\n", a, mach.Peek(iqolb.Addr(a)))
	}
}

type peekList []uint64

func (p *peekList) String() string { return fmt.Sprint(*p) }
func (p *peekList) Set(s string) error {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return err
	}
	*p = append(*p, v)
	return nil
}

type lockList []uint64

func (p *lockList) String() string { return fmt.Sprint(*p) }
func (p *lockList) Set(s string) error {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return err
	}
	*p = append(*p, v)
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqolbrun:", err)
		os.Exit(1)
	}
}
