// Command lockbench replays the simulator's workload signatures against
// the native lock library on the real machine, across a GOMAXPROCS
// sweep, and writes a schema-versioned JSON artifact (BENCH_locks.json
// by convention) that `report crosscheck` joins against a simulator
// sweep.
//
//	lockbench                          # all signatures × all locks, table + BENCH_locks.json
//	lockbench -procs 4 -json           # one machine size, JSON on stdout too
//	lockbench -bench raytrace,hotlock -locks ticket,mcs -procs 2,4,8
//
// Exit codes follow the repo convention (see README): 0 success, 1 run
// failure (including a mutual-exclusion violation), 2 unusable
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"iqolb/internal/lockbench"
	"iqolb/internal/workload"
	"iqolb/locks"
)

func main() {
	var (
		benches  = flag.String("bench", "all", `comma-separated signature names, or "all" (Table 2 benchmarks + microbenchmarks)`)
		lockList = flag.String("locks", "all", `comma-separated lock kinds, or "all" (tts ticket mcs clh adaptive)`)
		procList = flag.String("procs", "4", "comma-separated GOMAXPROCS values to sweep")
		scale    = flag.Int("scale", 1, "divide each signature's critical-section total")
		seed     = flag.Uint64("seed", 1, "per-goroutine PRNG seed (operation sequence, not timing)")
		out      = flag.String("o", "BENCH_locks.json", `artifact path ("" disables the file)`)
		jsonOut  = flag.Bool("json", false, "print the JSON artifact on stdout instead of the table")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lockbench [flags]")
		os.Exit(2)
	}

	benchNames, err := resolveBenches(*benches)
	usage(err)
	kinds, err := resolveLocks(*lockList)
	usage(err)
	procs, err := resolveProcs(*procList)
	usage(err)

	results, err := lockbench.RunMatrix(benchNames, kinds, procs, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockbench:", err)
		os.Exit(1)
	}
	file := lockbench.NewFile(results)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		if err := file.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lockbench: wrote %d results to %s\n", len(results), *out)
	}
	if *jsonOut {
		if err := file.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lockbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(lockbench.Render(results))
}

// usage exits with the configuration-error code on a bad flag value.
func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockbench:", err)
		os.Exit(2)
	}
}

func resolveBenches(s string) ([]string, error) {
	if s == "all" {
		var names []string
		for _, sp := range append(workload.Specs(), workload.MicroSpecs()...) {
			if sp.Params.PollProcs > 0 {
				continue // no native analogue for dedicated pollers
			}
			names = append(names, sp.Name)
		}
		return names, nil
	}
	names := strings.Split(s, ",")
	for _, n := range names {
		if _, err := workload.ByName(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

func resolveLocks(s string) ([]locks.Kind, error) {
	if s == "all" {
		return locks.Kinds(), nil
	}
	var kinds []locks.Kind
	for _, n := range strings.Split(s, ",") {
		k := locks.Kind(n)
		if _, err := locks.New(k); err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func resolveProcs(s string) ([]int, error) {
	var procs []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad proc count %q", f)
		}
		procs = append(procs, p)
	}
	return procs, nil
}
