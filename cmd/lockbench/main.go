// Command lockbench replays the simulator's workload signatures against
// the native lock library on the real machine, across a GOMAXPROCS
// sweep, and writes a schema-versioned JSON artifact (BENCH_locks.json
// by convention) that `report crosscheck` joins against a simulator
// sweep.
//
//	lockbench                          # all signatures × all locks, table + BENCH_locks.json
//	lockbench -procs 4 -json           # one machine size, JSON on stdout too
//	lockbench -bench raytrace,hotlock -locks ticket,mcs -procs 2,4,8
//
// Exit codes follow the repo convention (see README): 0 success, 1 run
// failure (including a mutual-exclusion violation), 2 unusable
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"iqolb/internal/cliconfig"
	"iqolb/internal/lockbench"
)

func main() {
	var (
		benches  = flag.String("bench", "all", `comma-separated signature names, or "all" (Table 2 benchmarks + microbenchmarks)`)
		lockList = flag.String("locks", "all", `comma-separated lock kinds, or "all" (tts ticket mcs clh adaptive)`)
		procList = flag.String("procs", "4", "comma-separated GOMAXPROCS values to sweep")
		scale    = flag.Int("scale", 1, "divide each signature's critical-section total")
		seed     = flag.Uint64("seed", 1, "per-goroutine PRNG seed (operation sequence, not timing)")
		tuned    = flag.Bool("tuned", false, "run with the adaptive tuner in the loop (live delay/spin retuning from measured waits)")
		out      = flag.String("o", "BENCH_locks.json", `artifact path ("" disables the file)`)
		jsonOut  = flag.Bool("json", false, "print the JSON artifact on stdout instead of the table")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lockbench [flags]")
		os.Exit(2)
	}

	benchNames, err := cliconfig.Benches(*benches)
	usage(err)
	kinds, err := cliconfig.LockKinds(*lockList)
	usage(err)
	procs, err := cliconfig.PositiveInts(*procList, "proc count")
	usage(err)

	results, err := lockbench.RunMatrix(benchNames, kinds, procs, *scale, *seed, *tuned)
	if err != nil {
		fail(err)
	}
	file := lockbench.NewFile(results)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := file.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lockbench: wrote %d results to %s\n", len(results), *out)
	}
	if *jsonOut {
		if err := file.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(lockbench.Render(results))
}

// usage exits with the configuration-error code on a bad flag value.
func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockbench:", err)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lockbench:", err)
	os.Exit(cliconfig.ExitCode(err))
}
