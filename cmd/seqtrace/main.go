// Command seqtrace regenerates the paper's message-sequence figures as
// coherence traces of the simulated bus:
//
//	seqtrace -figure 2   # traditional LL/SC (baseline): read, upgrade, retry
//	seqtrace -figure 3   # delayed response: LPRFO queue, no retries
//	seqtrace -figure 4   # IQOLB: tear-offs, critical sections, hand-offs
package main

import (
	"flag"
	"fmt"
	"os"

	"iqolb"
)

func main() {
	figure := flag.Int("figure", 4, "paper figure to regenerate (2, 3 or 4)")
	columns := flag.Bool("columns", false, "render a per-processor columnar chart (like the paper's figures)")
	flag.Parse()

	var (
		out string
		rec *iqolb.Recorder
		err error
	)
	procs := 3
	switch *figure {
	case 2:
		out, rec, err = iqolb.Figure2()
		procs = 2
	case 3:
		out, rec, err = iqolb.Figure3()
	case 4:
		out, rec, err = iqolb.Figure4()
	default:
		fmt.Fprintf(os.Stderr, "seqtrace: unknown figure %d (want 2, 3 or 4)\n", *figure)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqtrace:", err)
		os.Exit(1)
	}
	if *columns {
		fmt.Print(rec.RenderColumns(procs))
		return
	}
	fmt.Print(out)
}
