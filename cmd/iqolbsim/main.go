// Command iqolbsim runs one benchmark under one synchronization system on
// the simulated multiprocessor and reports the measurements.
//
// Usage:
//
//	iqolbsim -bench raytrace -system iqolb -procs 32
//	iqolbsim -bench hotlock -system tts -procs 8 -scale 4 -v
//	iqolbsim -bench hotlock -faults stuck-delay -fault-seed 7   # one faulted run
//	iqolbsim -bench hotlock -procs 4 -scale 16 -fault-campaign  # full campaign
//	iqolbsim -print-config     # the paper's Table 1
//	iqolbsim -list-workloads   # the paper's Table 2
//	iqolbsim -list-systems
//	iqolbsim -taxonomy         # the Figure 1 design-space progression
//
// A single faulted run arms the named fault kinds with graceful
// degradation and prints any degradation and injection summary alongside
// the usual measurements. -fault-campaign instead sweeps every requested
// kind (default: all) against a clean reference run and prints the
// deterministic campaign report as JSON; the exit status is 1 when the
// campaign records failures (divergence, untyped error, or a bare
// cycle-limit hang).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"iqolb"
)

func main() {
	var (
		bench       = flag.String("bench", "raytrace", "benchmark or microbenchmark name")
		system      = flag.String("system", "iqolb", "synchronization system (see -list-systems)")
		procs       = flag.Int("procs", 32, "processor count")
		scale       = flag.Int("scale", 1, "divide the workload by this factor")
		verbose     = flag.Bool("v", false, "print detailed statistics")
		checked     = flag.Bool("check", false, "run under the protocol-invariant monitors (internal/check)")
		tracePath   = flag.String("trace", "", "collect the observability event stream and write a Perfetto trace to this path")
		faultsFlag  = flag.String("faults", "", `fault kinds to inject: comma-separated names or "all"`)
		faultSeed   = flag.Uint64("fault-seed", 1, "deterministic seed for the fault plan")
		faultRate   = flag.Float64("fault-rate", 0, "per-opportunity injection probability (0 = always)")
		campaign    = flag.Bool("fault-campaign", false, "sweep the fault kinds against a clean reference and print the report JSON")
		printConfig = flag.Bool("print-config", false, "print the Table 1 system configuration and exit")
		listWl      = flag.Bool("list-workloads", false, "print the Table 2 benchmark inventory and exit")
		listSys     = flag.Bool("list-systems", false, "print the available systems and exit")
		taxonomy    = flag.Bool("taxonomy", false, "run the Figure 1 progression on a hot lock and exit")
	)
	flag.Parse()

	switch {
	case *printConfig:
		fmt.Print(iqolb.Table1())
		return
	case *listWl:
		fmt.Print(iqolb.Table2())
		return
	case *listSys:
		for _, s := range iqolb.Systems() {
			fmt.Printf("  %-16s primitive=%-7s mode=%-10s retention=%-5v tearoff=%v\n",
				s.Name, s.Primitive, s.Mode, s.Retention, s.TearOff)
		}
		return
	case *taxonomy:
		out, _, err := iqolb.Figure1(iqolb.Options{}, *procs, 1024)
		fail(err)
		fmt.Print(out)
		return
	}

	sys, err := iqolb.SystemByName(*system)
	usage(err)
	spec := iqolb.Spec{
		Bench:  *bench,
		System: sys.Name,
		Procs:  *procs,
		Scale:  *scale,
		Check:  *checked,
	}
	if *tracePath != "" {
		spec.Trace = &iqolb.TraceOptions{Perfetto: *tracePath}
	}

	if *campaign {
		kinds, err := iqolb.ParseFaultKinds(*faultsFlag)
		usage(err)
		rep, err := iqolb.RunCampaign(spec, iqolb.CampaignConfig{
			Kinds:   kinds,
			Seeds:   []uint64{*faultSeed},
			Rate:    *faultRate,
			Degrade: true,
		})
		fail(err)
		out, err := rep.JSON()
		fail(err)
		os.Stdout.Write(out)
		if rep.Failures > 0 {
			fmt.Fprintf(os.Stderr, "iqolbsim: campaign recorded %d failure(s)\n", rep.Failures)
			os.Exit(1)
		}
		return
	}
	if *faultsFlag != "" {
		kinds, err := iqolb.ParseFaultKinds(*faultsFlag)
		usage(err)
		spec.Faults = &iqolb.FaultPlan{
			Seed:    *faultSeed,
			Kinds:   kinds,
			Rate:    *faultRate,
			Degrade: true,
		}
	}

	res, err := iqolb.RunSpec(spec)
	fail(err)

	fmt.Printf("%s on %s, %d processors: %d cycles\n", sys.Name, *bench, *procs, res.Cycles)
	fmt.Printf("  bus transactions : %d\n", res.BusTransactions)
	fmt.Printf("  SC failure rate  : %.3f\n", res.SCFailureRate)
	fmt.Printf("  lock hand-off    : mean %.0f cycles\n", res.LockHandoffMean)
	fmt.Printf("  tear-offs        : %d\n", res.TearOffs)
	fmt.Printf("  delay time-outs  : %d\n", res.Timeouts)
	fmt.Printf("  queue breakdowns : %d\n", res.Breakdowns)
	if res.Obs != nil {
		fmt.Printf("  trace            : %d events to cycle %d, written to %s\n",
			res.Obs.Events, res.Obs.EndCycle, *tracePath)
	}
	if len(res.FaultInjections) > 0 {
		fmt.Printf("  faults injected  : %v\n", res.FaultInjections)
	}
	if res.Degraded {
		fmt.Printf("  degraded         : %s\n", res.DegradeReason)
	}
	if *verbose {
		st := res.Stats
		fmt.Printf("  memory reads     : %d (writebacks %d)\n", st.MemReads, st.MemWritebacks)
		fmt.Printf("  hand-off hist    : %s\n", st.LockHandoff.String())
		fmt.Printf("  acquire wait     : %s\n", st.AcquireWait.String())
		fmt.Printf("  miss latency     : %s\n", st.MissLatency.String())
		names := []string{"GETS", "GETX", "UPGR", "LPRFO", "WB", "QOLB"}
		fmt.Printf("  tx mix           :")
		for k, n := range names {
			fmt.Printf(" %s=%d", n, st.TotalTx(k))
		}
		fmt.Println()
	}
}

// usage exits with the configuration-error code (the repo convention:
// 0 success, 1 run failure, 2 unusable configuration, 3 deadlock).
func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "iqolbsim:", err)
		os.Exit(2)
	}
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "iqolbsim:", err)
	switch {
	case errors.Is(err, iqolb.ErrDeadlock):
		os.Exit(3)
	case errors.Is(err, iqolb.ErrCycleLimit):
		os.Exit(2)
	}
	os.Exit(1)
}
