// Command benchguard is the serving hot path's performance regression
// gate. It runs the wire microbenchmarks (internal/wirebench) in
// process via testing.Benchmark and compares them against the committed
// BENCH_wire.json baseline:
//
//	benchguard -write -o BENCH_wire.json    # refresh the baseline
//	benchguard -check BENCH_wire.json       # CI: exit 1 on regression
//
// Raw ns/op does not transfer between machines, so each benchmark is
// normalized by the in-process Calibrate reference loop and the gate
// compares that ratio; -tolerance (default 0.20) is the allowed
// fractional slowdown. Allocation counts are machine-independent and
// must not rise at all — the codec's 0 allocs/op is part of the wire
// contract, not a soft target.
//
// Exit codes follow the repo convention: 0 pass, 1 regression or
// runtime failure, 2 unusable configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"iqolb/internal/wirebench"
)

// FileSchemaVersion stamps BENCH_wire.json so future readers can
// migrate.
const FileSchemaVersion = 1

// Result is one benchmark's committed shape.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// CalibRatio is NsPerOp divided by the calibration loop's ns/op on
	// the same machine in the same process — the number the gate
	// actually compares.
	CalibRatio float64 `json:"calib_ratio"`
	// SlackFactor scales the gate tolerance for this case (socket round
	// trips are noisier than pure-CPU codec loops).
	SlackFactor float64 `json:"slack_factor"`
}

// File is the committed baseline artifact.
type File struct {
	SchemaVersion int      `json:"schema_version"`
	CalibNsPerOp  float64  `json:"calib_ns_per_op"`
	Results       []Result `json:"results"`
}

func main() {
	var (
		write     = flag.Bool("write", false, "write a fresh baseline instead of checking")
		out       = flag.String("o", "BENCH_wire.json", "baseline path for -write")
		check     = flag.String("check", "", "baseline path to gate against")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional calib-ratio slowdown")
	)
	flag.Parse()
	if flag.NArg() != 0 || (*write == (*check != "")) {
		fmt.Fprintln(os.Stderr, "usage: benchguard -write [-o FILE] | benchguard -check FILE [-tolerance F]")
		os.Exit(2)
	}

	cur := measure()
	if *write {
		if err := writeFile(*out, cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: wrote %s (calib %.0f ns/op)\n", *out, cur.CalibNsPerOp)
		render(cur)
		return
	}

	base, err := loadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	fmt.Printf("benchguard: baseline %s (calib %.0f ns/op), current calib %.0f ns/op\n",
		*check, base.CalibNsPerOp, cur.CalibNsPerOp)
	failures := 0
	byName := map[string]Result{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	for _, now := range cur.Results {
		was, ok := byName[now.Name]
		if !ok {
			fmt.Printf("  %-26s NEW       ratio %.2f, %d allocs/op (no baseline)\n", now.Name, now.CalibRatio, now.AllocsPerOp)
			continue
		}
		slack := now.SlackFactor
		if slack <= 0 {
			slack = 1
		}
		allowed := *tolerance * slack
		slowdown := now.CalibRatio/was.CalibRatio - 1
		status := "ok"
		if slowdown > allowed {
			status = "REGRESSION"
			failures++
		}
		if now.AllocsPerOp > was.AllocsPerOp {
			status = "ALLOC REGRESSION"
			failures++
		}
		fmt.Printf("  %-26s %-16s ratio %.2f vs %.2f (%+.0f%%, allowed +%.0f%%), allocs %d vs %d\n",
			now.Name, status, now.CalibRatio, was.CalibRatio, slowdown*100, allowed*100, now.AllocsPerOp, was.AllocsPerOp)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s) beyond %.0f%% tolerance\n", failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchguard: pass")
}

// measure runs the calibration loop and every guarded benchmark in this
// process. Each is run three times and the fastest kept — min-of-N is
// the standard de-noising for a gate (transient scheduler interference
// only ever slows a run down).
func measure() File {
	calibNs := minOf3(wirebench.Calibrate, nil)
	f := File{SchemaVersion: FileSchemaVersion, CalibNsPerOp: calibNs}
	for _, c := range wirebench.All() {
		var best testing.BenchmarkResult
		ns := minOf3(c.Fn, &best)
		f.Results = append(f.Results, Result{
			Name:        c.Name,
			NsPerOp:     ns,
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			CalibRatio:  ns / calibNs,
			SlackFactor: c.SlackFactor,
		})
	}
	return f
}

// minOf3 benchmarks fn three times, returns the fastest ns/op, and (if
// out is non-nil) stores that fastest run's full result.
func minOf3(fn func(*testing.B), out *testing.BenchmarkResult) float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.NsPerOp())
		if best == 0 || ns < best {
			best = ns
			if out != nil {
				*out = r
			}
		}
	}
	return best
}

func render(f File) {
	for _, r := range f.Results {
		fmt.Printf("  %-26s %10.0f ns/op  ratio %.2f  %d allocs/op  %d B/op\n",
			r.Name, r.NsPerOp, r.CalibRatio, r.AllocsPerOp, r.BytesPerOp)
	}
}

func writeFile(path string, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func loadFile(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	if f.SchemaVersion != FileSchemaVersion {
		return File{}, fmt.Errorf("%s: schema %d, want %d", path, f.SchemaVersion, FileSchemaVersion)
	}
	return f, nil
}
