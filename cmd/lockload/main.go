// Command lockload replays workload signatures over N real TCP client
// connections against a lock-lease server and writes a schema-versioned
// JSON artifact (BENCH_service.json by convention): throughput, p50/p99/
// p99.9 client-observed grant latency, Jain fairness, and shed/degrade
// counters.
//
//	lockload                                   # hotlock, 8 clients, handoff vs broadcast
//	lockload -bench hotlock -clients 4,8,16 -policy both
//	lockload -addr 127.0.0.1:7007 -clients 8   # against an external lockserve
//	lockload -phases                           # low→high→low shift: static policies vs adaptive
//
// With -policy both (the default) each configuration runs under both
// grant policies — the direct releaser→waiter hand-off and the
// broadcast-wakeup baseline — which is the serving-layer rendition of
// the paper's queue-based-locking vs test&set comparison.
//
// With -phases the run is the phase-shifting workload instead: offered
// contention moves low → high → low in one run, and each mode in
// -policy ("all" = handoff, broadcast, adaptive) serves the same
// schedule. The adaptive mode runs the contention controller, which
// must match the best static policy in every phase by live-migrating
// the hot shards. The artifact defaults to BENCH_adaptive.json.
//
// With -throughput the run is the open-loop pipelined sweep instead:
// every client count × -windows × -flush-delays cell hammers
// acquire/release pairs with no think time, the (window=1, flush=0)
// cell being the one-in-flight baseline the other rows' speedups are
// computed against. The artifact defaults to BENCH_throughput.json and
// shows the paper's trade directly: the coalescing flush delay buys
// ops/s and costs p50.
//
// With -chaos the run is the network-fault campaign instead: every
// fault kind in -chaos-kinds crossed with every seed in -chaos-seeds,
// each run squeezing real resilient clients through a deterministic
// fault-injecting proxy (internal/chaos) and asserting lease
// conservation plus server-boundary linearizability. The artifact
// defaults to BENCH_chaos.json and is byte-identical across runs of the
// same seeds. Any invariant violation exits 1.
//
// Exit codes follow the repo convention (see README): 0 success, 1 run
// failure, 2 unusable configuration.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	chaoslib "iqolb/internal/chaos"
	"iqolb/internal/cliconfig"
	"iqolb/internal/loadgen"
)

func main() {
	var (
		bench      = flag.String("bench", "hotlock", "workload signature name (flat runs)")
		clientList = flag.String("clients", "8", "comma-separated client counts to sweep")
		policyFlag = flag.String("policy", "both", `grant policy: "handoff", "broadcast", or "both"; with -phases also "adaptive" or "all"`)
		lockKind   = flag.String("lock", "mcs", "shard guard primitive (in-process server only)")
		shards     = flag.Int("shards", 8, "server shard count (in-process server only)")
		queue      = flag.Int("queue", 64, "admission queue depth per shard (in-process server only)")
		scale      = flag.Int("scale", 1, "divide the signature's critical-section total (flat) or each phase's op count (-phases)")
		seed       = flag.Uint64("seed", 1, "per-client PRNG seed (operation sequence, not timing)")
		ttl        = flag.Duration("ttl", 0, "per-acquire lease TTL (0 = server default)")
		maxWait    = flag.Duration("max-wait", 10*time.Second, "bound on each queued wait")
		addr       = flag.String("addr", "", "external lockserve address (empty = in-process server per run)")
		phases     = flag.Bool("phases", false, "run the phase-shifting workload (low→high→low) instead of flat signature replay")
		ctrlEvery  = flag.Duration("adaptive-interval", 5*time.Millisecond, "controller sampling period for the adaptive mode (-phases)")
		chaos      = flag.Bool("chaos", false, "run the network-fault campaign instead of a benchmark")
		chaosKinds = flag.String("chaos-kinds", "all", `comma-separated fault kinds for -chaos ("all" = every kind; a "none" control row always runs)`)
		chaosSeeds = flag.String("chaos-seeds", "1,2,3,4,5,6,7,8", "comma-separated seeds for -chaos")
		chaosWin   = flag.Int("chaos-window", 1, "pipelining window for -chaos clients (1 = lock-step)")
		tput       = flag.Bool("throughput", false, "run the open-loop pipelined throughput sweep instead of a benchmark")
		windows    = flag.String("windows", "1,4,16,64", "comma-separated per-connection in-flight windows for -throughput (1 = lock-step baseline)")
		flushList  = flag.String("flush-delays", "0s,50us,200us", "comma-separated write-coalescing flush delays for -throughput")
		opsPer     = flag.Int("ops", 2000, "acquire+release pairs per connection for -throughput")
		resources  = flag.Int("resources", 0, "shared resource pool for -throughput (0 = a private resource per worker: pure wire-path measurement)")
		out        = flag.String("o", "", `artifact path (default BENCH_service.json, BENCH_adaptive.json with -phases, or BENCH_chaos.json with -chaos; "none" disables)`)
		jsonOut    = flag.Bool("json", false, "print the JSON artifact on stdout instead of the table")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lockload [flags]")
		os.Exit(2)
	}
	outPath := *out
	if outPath == "" {
		switch {
		case *phases:
			outPath = "BENCH_adaptive.json"
		case *chaos:
			outPath = "BENCH_chaos.json"
		case *tput:
			outPath = "BENCH_throughput.json"
		default:
			outPath = "BENCH_service.json"
		}
	} else if outPath == "none" {
		outPath = ""
	}

	if *chaos {
		runChaos(*chaosKinds, *chaosSeeds, *chaosWin, outPath, *jsonOut)
		return
	}

	if *tput {
		runThroughput(*clientList, *windows, *flushList, *opsPer, *resources, *shards, *queue, *seed, *lockKind, *addr, *ttl, outPath, *jsonOut)
		return
	}

	if *phases {
		runPhased(*policyFlag, *clientList, *lockKind, *shards, *queue, *scale, *seed, *ttl, *maxWait, *ctrlEvery, outPath, *jsonOut)
		return
	}

	clients, err := cliconfig.PositiveInts(*clientList, "client count")
	usage(err)
	policies, err := cliconfig.Policies(*policyFlag, *addr)
	usage(err)
	kind, err := cliconfig.LockKind(*lockKind)
	usage(err)

	var results []loadgen.Result
	for _, n := range clients {
		for _, pol := range policies {
			res, err := loadgen.Run(loadgen.Config{
				Bench:      *bench,
				Clients:    n,
				Addr:       *addr,
				Shards:     *shards,
				Lock:       kind,
				Policy:     pol,
				QueueDepth: *queue,
				Scale:      *scale,
				Seed:       *seed,
				TTL:        *ttl,
				MaxWait:    *maxWait,
			})
			if err != nil {
				fail(err)
			}
			results = append(results, res)
		}
	}

	file := loadgen.NewFile(results)
	if outPath != "" {
		if err := writeJSONFile(outPath, file.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lockload: wrote %d results to %s\n", len(results), outPath)
	}
	if *jsonOut {
		if err := file.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(loadgen.Render(results))
}

// runThroughput executes the open-loop pipelined sweep: every client
// count × window × flush delay, with the (window=1, flush=0) row as
// the one-in-flight baseline each row's speedup is computed against.
func runThroughput(clientList, windowList, flushListFlag string, opsPer, resources, shards, queue int, seed uint64, lockKind, addr string, ttl time.Duration, outPath string, jsonOut bool) {
	clients, err := cliconfig.PositiveInts(clientList, "client count")
	usage(err)
	wins, err := cliconfig.PositiveInts(windowList, "window")
	usage(err)
	delays, err := cliconfig.Durations(flushListFlag, "flush delay")
	usage(err)
	kind, err := cliconfig.LockKind(lockKind)
	usage(err)

	var results []loadgen.ThroughputResult
	for _, n := range clients {
		for _, w := range wins {
			for _, d := range delays {
				res, err := loadgen.RunThroughput(loadgen.ThroughputConfig{
					Clients:      n,
					Window:       w,
					FlushDelay:   d,
					OpsPerClient: opsPer,
					Resources:    resources,
					Seed:         seed,
					Addr:         addr,
					Shards:       shards,
					Lock:         kind,
					QueueDepth:   queue,
					TTL:          ttl,
				})
				if err != nil {
					fail(err)
				}
				fmt.Fprintf(os.Stderr, "lockload: throughput clients=%d window=%-3d flush=%-6s %10.0f ops/s\n", n, w, d, res.Throughput)
				results = append(results, res)
			}
		}
	}

	file := loadgen.NewThroughputFile(results)
	if outPath != "" {
		if err := writeJSONFile(outPath, file.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lockload: wrote %d throughput runs to %s\n", len(results), outPath)
	}
	if jsonOut {
		if err := file.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(loadgen.RenderThroughput(file.Results))
}

// runChaos executes the network-fault campaign: (control + each kind)
// × each seed, with per-run conservation and linearizability checks.
// Invariant violations exit 1; a degraded classification alone does
// not (it is a legal, typed way for a run to end).
func runChaos(kindsFlag, seedsFlag string, window int, outPath string, jsonOut bool) {
	kinds, err := chaoslib.ParseKinds(kindsFlag)
	usage(err)
	seedInts, err := cliconfig.PositiveInts(seedsFlag, "chaos seed")
	usage(err)
	seeds := make([]uint64, len(seedInts))
	for i, s := range seedInts {
		seeds[i] = uint64(s)
	}

	rep := chaoslib.RunCampaign(chaoslib.CampaignConfig{
		Kinds:  kinds,
		Seeds:  seeds,
		Window: window,
		OnRun: func(r chaoslib.RunResult) {
			status := ""
			if r.Failed() {
				status = "  INVARIANT VIOLATION"
			}
			fmt.Fprintf(os.Stderr, "lockload: chaos %-13s seed %-3d %-10s%s\n", r.Kind, r.Seed, r.Outcome, status)
		},
	})

	if outPath != "" {
		if err := writeJSONFile(outPath, rep.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lockload: wrote %d chaos runs to %s\n", len(rep.Runs), outPath)
	}
	if jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "lockload: chaos campaign FAILED: %d runs violated invariants\n", rep.Failures)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lockload: chaos campaign clean: %d runs, outcomes %v\n", len(rep.Runs), rep.Outcomes)
}

// runPhased executes the phase-shifting comparison: every requested
// mode serves the identical low→high→low schedule.
func runPhased(policyFlag, clientList, lockKind string, shards, queue, scale int, seed uint64, ttl, maxWait, ctrlEvery time.Duration, outPath string, jsonOut bool) {
	var modes []string
	switch policyFlag {
	case "all", "both":
		modes = loadgen.PhasedModes
	case loadgen.ModeHandoff, loadgen.ModeBroadcast, loadgen.ModeAdaptive:
		modes = []string{policyFlag}
	default:
		usage(fmt.Errorf("unknown -policy %q for -phases (have handoff, broadcast, adaptive, all)", policyFlag))
	}
	clients, err := cliconfig.PositiveInts(clientList, "client count")
	usage(err)
	if len(clients) != 1 {
		usage(fmt.Errorf("-phases needs exactly one client count, got %v", clients))
	}
	kind, err := cliconfig.LockKind(lockKind)
	usage(err)
	schedule := loadgen.DefaultPhases()
	if scale > 1 {
		for i := range schedule {
			if schedule[i].OpsPerClient /= scale; schedule[i].OpsPerClient < 1 {
				schedule[i].OpsPerClient = 1
			}
		}
	}

	var runs []loadgen.PhasedResult
	for _, mode := range modes {
		r, err := loadgen.RunPhases(loadgen.PhasedConfig{
			Mode:             mode,
			Clients:          clients[0],
			Phases:           schedule,
			Shards:           shards,
			Lock:             kind,
			QueueDepth:       queue,
			Seed:             seed,
			TTL:              ttl,
			MaxWait:          maxWait,
			AdaptiveInterval: ctrlEvery,
		})
		if err != nil {
			fail(err)
		}
		runs = append(runs, r)
	}

	file := loadgen.NewPhasedFile(runs)
	if outPath != "" {
		if err := writeJSONFile(outPath, file.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "lockload: wrote %d phased runs to %s\n", len(runs), outPath)
	}
	if jsonOut {
		if err := file.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(loadgen.RenderPhased(runs))
}

func writeJSONFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockload:", err)
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lockload:", err)
	os.Exit(cliconfig.ExitCode(err))
}
