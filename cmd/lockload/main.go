// Command lockload replays workload signatures over N real TCP client
// connections against a lock-lease server and writes a schema-versioned
// JSON artifact (BENCH_service.json by convention): throughput, p50/p99/
// p99.9 client-observed grant latency, Jain fairness, and shed/degrade
// counters.
//
//	lockload                                   # hotlock, 8 clients, handoff vs broadcast
//	lockload -bench hotlock -clients 4,8,16 -policy both
//	lockload -addr 127.0.0.1:7007 -clients 8   # against an external lockserve
//
// With -policy both (the default) each configuration runs under both
// grant policies — the direct releaser→waiter hand-off and the
// broadcast-wakeup baseline — which is the serving-layer rendition of
// the paper's queue-based-locking vs test&set comparison.
//
// Exit codes follow the repo convention (see README): 0 success, 1 run
// failure, 2 unusable configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"iqolb/internal/loadgen"
	"iqolb/internal/service"
	"iqolb/locks"
)

func main() {
	var (
		bench      = flag.String("bench", "hotlock", "workload signature name")
		clientList = flag.String("clients", "8", "comma-separated client counts to sweep")
		policyFlag = flag.String("policy", "both", `grant policy: "handoff", "broadcast", or "both" (in-process server only)`)
		lockKind   = flag.String("lock", "mcs", "shard guard primitive (in-process server only)")
		shards     = flag.Int("shards", 8, "server shard count (in-process server only)")
		queue      = flag.Int("queue", 64, "admission queue depth per shard (in-process server only)")
		scale      = flag.Int("scale", 1, "divide the signature's critical-section total")
		seed       = flag.Uint64("seed", 1, "per-client PRNG seed (operation sequence, not timing)")
		ttl        = flag.Duration("ttl", 0, "per-acquire lease TTL (0 = server default)")
		maxWait    = flag.Duration("max-wait", 10*time.Second, "bound on each queued wait")
		addr       = flag.String("addr", "", "external lockserve address (empty = in-process server per run)")
		out        = flag.String("o", "BENCH_service.json", `artifact path ("" disables the file)`)
		jsonOut    = flag.Bool("json", false, "print the JSON artifact on stdout instead of the table")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: lockload [flags]")
		os.Exit(2)
	}

	clients, err := resolveClients(*clientList)
	usage(err)
	policies, err := resolvePolicies(*policyFlag, *addr)
	usage(err)
	kind := locks.Kind(*lockKind)
	if _, err := locks.New(kind); err != nil {
		usage(err)
	}

	var results []loadgen.Result
	for _, n := range clients {
		for _, pol := range policies {
			res, err := loadgen.Run(loadgen.Config{
				Bench:      *bench,
				Clients:    n,
				Addr:       *addr,
				Shards:     *shards,
				Lock:       kind,
				Policy:     pol,
				QueueDepth: *queue,
				Scale:      *scale,
				Seed:       *seed,
				TTL:        *ttl,
				MaxWait:    *maxWait,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "lockload:", err)
				os.Exit(1)
			}
			results = append(results, res)
		}
	}

	file := loadgen.NewFile(results)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockload:", err)
			os.Exit(1)
		}
		if err := file.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "lockload:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lockload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lockload: wrote %d results to %s\n", len(results), *out)
	}
	if *jsonOut {
		if err := file.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "lockload:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(loadgen.Render(results))
}

func usage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockload:", err)
		os.Exit(2)
	}
}

func resolveClients(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func resolvePolicies(s, addr string) ([]service.Policy, error) {
	if s == "both" {
		if addr != "" {
			return nil, fmt.Errorf(`-policy both needs an in-process server (the policy is fixed by the external server); pick "handoff" or "broadcast"`)
		}
		return []service.Policy{service.PolicyHandoff, service.PolicyBroadcast}, nil
	}
	p, err := service.ParsePolicy(s)
	if err != nil {
		return nil, err
	}
	return []service.Policy{p}, nil
}
