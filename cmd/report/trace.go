package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"iqolb"
)

// traceCmd implements `report trace`: run one traced simulation and emit
// its Perfetto (Chrome trace-event) export plus a contention summary.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("report trace", flag.ExitOnError)
	var (
		bench  = fs.String("bench", "raytrace", "benchmark or microbenchmark name")
		system = fs.String("system", "iqolb", "synchronization system")
		procs  = fs.Int("p", 8, "processor count")
		scale  = fs.Int("scale", 1, "divide the workload by this factor")
		out    = fs.String("o", "", "trace output path (default <bench>_<system>_p<procs>.trace.json)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: report trace [-bench B] [-system S] [-p N] [-scale K] [-o FILE]")
		fmt.Fprintln(os.Stderr, "runs one traced simulation and writes a Perfetto-loadable trace")
		fmt.Fprintln(os.Stderr, "(open at https://ui.perfetto.dev or chrome://tracing)")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	path := *out
	if path == "" {
		path = fmt.Sprintf("%s_%s_p%d.trace.json", *bench, *system, *procs)
	}

	res, err := iqolb.RunSpec(iqolb.Spec{
		Bench: *bench, System: *system, Procs: *procs, Scale: *scale,
		Trace: &iqolb.TraceOptions{Perfetto: path},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "report trace:", err)
		switch {
		case errors.Is(err, iqolb.ErrDeadlock):
			os.Exit(3)
		case errors.Is(err, iqolb.ErrCycleLimit):
			os.Exit(2)
		}
		os.Exit(1)
	}

	fmt.Printf("%s on %s, %d processors: %d cycles\n", *system, *bench, *procs, res.Cycles)
	snap := res.Obs
	fmt.Printf("observed %d events to cycle %d\n", snap.Events, snap.EndCycle)
	for _, l := range snap.Locks {
		fmt.Printf("lock %#x: %d acquires / %d attempts, max queue %d\n",
			l.Addr, l.Acquires, l.Attempts, l.MaxQueueDepth)
		fmt.Printf("  hold time        : mean %.0f cycles (p50 %.0f, p99 %.0f)\n",
			l.HoldTime.Mean(), l.HoldTime.Percentile(50), l.HoldTime.Percentile(99))
		fmt.Printf("  hand-off latency : mean %.0f cycles (p50 %.0f, p99 %.0f)\n",
			l.HandoffLatency.Mean(), l.HandoffLatency.Percentile(50), l.HandoffLatency.Percentile(99))
		fmt.Printf("  acquire wait     : mean %.0f cycles (p50 %.0f, p99 %.0f)\n",
			l.AcquireWait.Mean(), l.AcquireWait.Percentile(50), l.AcquireWait.Percentile(99))
		shares := make([]string, len(l.AcquiresByProc))
		for i, n := range l.AcquiresByProc {
			shares[i] = fmt.Sprint(n)
		}
		fmt.Printf("  acquires by proc : [%s]\n", strings.Join(shares, " "))
	}
	fmt.Printf("bus: %d occupancy samples, max %d queued / %d outstanding\n",
		snap.Bus.Samples, snap.Bus.MaxQueued, snap.Bus.MaxOutstanding)
	if snap.Barriers.Episodes > 0 {
		fmt.Printf("barriers: %d episodes, span mean %.0f cycles\n",
			snap.Barriers.Episodes, snap.Barriers.Span.Mean())
	}
	fmt.Printf("trace written to %s (open at https://ui.perfetto.dev)\n", path)
}
