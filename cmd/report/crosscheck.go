package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"iqolb"
	"iqolb/internal/experiments"
	"iqolb/internal/lockbench"
)

// crosscheckCmd implements `report crosscheck`: join a native lockbench
// artifact with a simulator sweep over the same workload signatures and
// score whether the primitive ordering agrees — the differential oracle
// between sim and metal.
//
// Exit codes: 0 success (agreement, or disagreement when not -strict; a
// disagreement always carries an explanation), 1 run failure or -strict
// disagreement, 2 unusable configuration or input, 3 simulated deadlock.
func crosscheckCmd(args []string) {
	fs := flag.NewFlagSet("report crosscheck", flag.ExitOnError)
	var (
		native   = fs.String("native", "BENCH_locks.json", "lockbench JSON artifact to cross-validate")
		scale    = fs.Int("scale", 1, "divide the simulator workloads (native results are used as-is)")
		jobs     = fs.Int("j", runtime.NumCPU(), "parallel simulation workers")
		noCache  = fs.Bool("no-cache", false, "always simulate; do not read or write the result cache")
		cacheDir = fs.String("cache-dir", iqolb.DefaultCacheDir, "on-disk result cache location")
		quiet    = fs.Bool("q", false, "suppress progress output on stderr")
		jsonOut  = fs.Bool("json", false, "print the schema-versioned JSON report instead of the table")
		outPath  = fs.String("o", "", "also write the JSON report to this path")
		strict   = fs.Bool("strict", false, "exit 1 if any signature's primitive ordering disagrees")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: report crosscheck [flags]")
		os.Exit(2)
	}

	file, err := lockbench.LoadFile(*native)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report crosscheck:", err)
		fmt.Fprintln(os.Stderr, "report crosscheck: generate the artifact first: go run ./cmd/lockbench")
		os.Exit(2)
	}

	opt := experiments.Options{Jobs: *jobs, CacheDir: *cacheDir}
	if *noCache {
		opt.CacheDir = ""
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	rep, err := lockbench.Crosscheck(opt, file.Results, *scale)
	if err != nil {
		switch {
		case errors.Is(err, iqolb.ErrDeadlock):
			fmt.Fprintf(os.Stderr, "report crosscheck: %v\n", err)
			os.Exit(3)
		case errors.Is(err, iqolb.ErrCycleLimit):
			fmt.Fprintf(os.Stderr, "report crosscheck: %v\n", err)
			fmt.Fprintln(os.Stderr, "report crosscheck: use -scale to shrink the simulated workloads")
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "report crosscheck:", err)
		os.Exit(1)
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "report crosscheck:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "report crosscheck:", err)
			os.Exit(1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "report crosscheck:", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(lockbench.RenderReport(rep))
	}
	if *strict && rep.Disagreements > 0 {
		fmt.Fprintf(os.Stderr, "report crosscheck: %d signature(s) disagree (-strict)\n", rep.Disagreements)
		os.Exit(1)
	}
}
