// Command report regenerates every experimental artifact in one run — the
// data behind EXPERIMENTS.md. At full scale (the default) it reproduces
// the paper's configuration: 32 processors, unscaled workloads.
//
//	report             # full scale (about a minute)
//	report -quick      # 8 processors, workloads divided by 8
package main

import (
	"flag"
	"fmt"
	"os"

	"iqolb"
)

func main() {
	quick := flag.Bool("quick", false, "small machine, scaled-down workloads")
	flag.Parse()

	procs, scale, sweepProcs, sweepCS := 32, 1, 16, 1024
	if *quick {
		procs, scale, sweepProcs, sweepCS = 8, 8, 8, 256
	}

	emit := func(section string, body string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: %v\n", section, err)
			os.Exit(1)
		}
		fmt.Println(body)
	}

	fmt.Println(iqolb.Table1())
	fmt.Println(iqolb.Table2())

	t3, _, err := iqolb.Table3(procs, scale)
	emit("table3", t3, err)

	f1, _, err := iqolb.Figure1(sweepProcs, sweepCS)
	emit("figure1", f1, err)

	f2, _, err := iqolb.Figure2()
	emit("figure2", f2, err)
	f3, _, err := iqolb.Figure3()
	emit("figure3", f3, err)
	f4, _, err := iqolb.Figure4()
	emit("figure4", f4, err)

	sc, err := iqolb.SweepScaling("raytrace", []int{1, 2, 4, 8, 16, 32}, scale)
	emit("scaling", sc, err)

	to, err := iqolb.SweepTimeout(sweepProcs, sweepCS,
		[]iqolb.Time{200, 500, 1000, 5000, 10000, 50000})
	emit("timeout", to, err)

	re, err := iqolb.SweepRetention(sweepProcs, sweepCS)
	emit("retention", re, err)

	co, err := iqolb.SweepCollocation(sweepProcs, sweepCS)
	emit("collocation", co, err)

	pr, err := iqolb.SweepPredictor(sweepProcs, sweepCS)
	emit("predictor", pr, err)

	ge, err := iqolb.SweepGeneralized(sweepProcs, sweepCS)
	emit("generalized", ge, err)
}
