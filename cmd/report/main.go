// Command report regenerates every experimental artifact in one run — the
// data behind EXPERIMENTS.md. At full scale (the default) it reproduces
// the paper's configuration: 32 processors, unscaled workloads.
//
// Each section's simulations fan out across a bounded worker pool (-j,
// default all CPUs) and are memoized in the on-disk result cache, so
// re-running the report only simulates what changed.
//
//	report             # full scale (seconds on a warm cache)
//	report -quick      # 8 processors, workloads divided by 8
//
// The trace subcommand runs one traced simulation instead and writes a
// Perfetto-loadable Chrome trace (see internal/obs):
//
//	report trace -bench raytrace -system iqolb -p 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"iqolb"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "crosscheck" {
		crosscheckCmd(os.Args[2:])
		return
	}
	var (
		quick = flag.Bool("quick", false, "small machine, scaled-down workloads")

		jobs      = flag.Int("j", runtime.NumCPU(), "parallel simulation workers")
		noCache   = flag.Bool("no-cache", false, "always simulate; do not read or write the result cache")
		cacheDir  = flag.String("cache-dir", iqolb.DefaultCacheDir, "on-disk result cache location")
		artifacts = flag.String("artifacts", "", "write per-job result JSON and the run manifest to this directory")
		quiet     = flag.Bool("q", false, "suppress progress output on stderr")
	)
	flag.Parse()

	opt := iqolb.Options{Jobs: *jobs, CacheDir: *cacheDir, ArtifactDir: *artifacts}
	if *noCache {
		opt.CacheDir = ""
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	procs, scale, sweepProcs, sweepCS := 32, 1, 16, 1024
	if *quick {
		procs, scale, sweepProcs, sweepCS = 8, 8, 8, 256
	}

	emit := func(section string, body string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: %v\n", section, err)
			if errors.Is(err, iqolb.ErrCycleLimit) {
				fmt.Fprintln(os.Stderr, "report: a simulation hit the engine's cycle limit — its results would be truncated; use -quick or a larger cycle budget")
				os.Exit(2)
			}
			os.Exit(1)
		}
		fmt.Println(body)
	}

	fmt.Println(iqolb.Table1())
	fmt.Println(iqolb.Table2())

	t3, _, err := iqolb.Table3(opt, procs, scale)
	emit("table3", t3, err)

	f1, _, err := iqolb.Figure1(opt, sweepProcs, sweepCS)
	emit("figure1", f1, err)

	f2, _, err := iqolb.Figure2()
	emit("figure2", f2, err)
	f3, _, err := iqolb.Figure3()
	emit("figure3", f3, err)
	f4, _, err := iqolb.Figure4()
	emit("figure4", f4, err)

	sc, err := iqolb.Sweep(opt, iqolb.SweepSpec{
		Kind: iqolb.SweepScalingKind, Bench: "raytrace",
		ProcCounts: []int{1, 2, 4, 8, 16, 32}, Scale: scale,
	})
	emit("scaling", sc, err)

	to, err := iqolb.Sweep(opt, iqolb.SweepSpec{
		Kind: iqolb.SweepTimeoutKind, Procs: sweepProcs, TotalCS: sweepCS,
		Budgets: []iqolb.Time{200, 500, 1000, 5000, 10000, 50000},
	})
	emit("timeout", to, err)

	for _, kind := range []iqolb.SweepKind{
		iqolb.SweepRetentionKind, iqolb.SweepCollocationKind,
		iqolb.SweepPredictorKind, iqolb.SweepGeneralizedKind,
	} {
		out, err := iqolb.Sweep(opt, iqolb.SweepSpec{Kind: kind, Procs: sweepProcs, TotalCS: sweepCS})
		emit(string(kind), out, err)
	}
}
